/**
 * @file
 * Tests of the scale-parameterized workload footprints and the
 * interval-sampled measurement pipeline:
 *  - every scale-1 base-footprint program is byte-identical to the
 *    pre-refactor kernels (golden code and data hashes);
 *  - the footprint models land in their regime's byte band, and the
 *    L2-resident mode actually misses L1 on every workload;
 *  - invalid scales are rejected loudly (no silent clamping);
 *  - interval-sampled estimates reproduce the tiled full-detail run
 *    within 2% IPC on all 12 workloads at scale 4 / L2 footprints;
 *  - sampled sweeps are byte-identical serial vs parallel, and fall
 *    back to exact full runs when a program is too short to sample.
 */

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "sweep/checkpoint.hh"
#include "sweep/executor.hh"
#include "sweep/plan.hh"
#include "sweep/sampling.hh"
#include "workloads/workload.hh"

namespace sdv {
namespace {

/** FNV-1a over every data segment (base + contents). */
std::uint64_t
dataHash(const Program &p)
{
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](const void *ptr, size_t n) {
        const auto *c = static_cast<const unsigned char *>(ptr);
        for (size_t i = 0; i < n; ++i)
            h = (h ^ c[i]) * 1099511628211ULL;
    };
    for (const DataSegment &s : p.dataSegments()) {
        mix(&s.base, sizeof(s.base));
        mix(s.bytes.data(), s.bytes.size());
    }
    return h;
}

struct Golden
{
    const char *name;
    std::uint64_t code;
    std::uint64_t data;
};

/** Captured from the pre-refactor kernels (commit 8ed2666): the exact
 *  scale-1 programs every figure in the repo was produced from. */
constexpr Golden goldens[] = {
    {"go", 0x935846b3e5ecd442ULL, 0xd69843b0bb3c28caULL},
    {"m88ksim", 0x1347429214037009ULL, 0x61c6ae2f5a4b6716ULL},
    {"gcc", 0xe78b7e37403d7b75ULL, 0x7ce03052ccd8c784ULL},
    {"compress", 0x7f36f2ed168a7246ULL, 0xc049f78b72fa46caULL},
    {"li", 0xb50d234b70069431ULL, 0x17350d45e8f65ae9ULL},
    {"ijpeg", 0xd346bb05fb1c8a30ULL, 0xff9488976c187f19ULL},
    {"perl", 0x350e35218ad0513cULL, 0x3f8a1c159f308748ULL},
    {"vortex", 0xf0b5b1045b2f6af9ULL, 0x8a401a66ef181c79ULL},
    {"swim", 0xce2e962ebb75fe13ULL, 0xf586ad44fcac0bc0ULL},
    {"applu", 0x03d6d872c6db9569ULL, 0x719f818b60ed097cULL},
    {"turb3d", 0x3d192dc3fc0ec44bULL, 0x516f346288eeda19ULL},
    {"fpppp", 0x923818ed5949bfb2ULL, 0x092c631e6bb269fdULL},
};

TEST(Footprints, ScaleOneBaseProgramsMatchPreRefactorGoldens)
{
    for (const Golden &g : goldens) {
        const Program p = buildWorkload(g.name, 1, Footprint::Base);
        EXPECT_EQ(p.identityHash(), g.code) << g.name;
        EXPECT_EQ(dataHash(p), g.data) << g.name;
    }
}

TEST(Footprints, PlansLandInTheirRegimesByteBand)
{
    const std::size_t kib = 1024;
    for (const WorkloadSpec &w : allWorkloads()) {
        const std::size_t base = w.plan(1, Footprint::Base).totalBytes();
        const std::size_t l2 = w.plan(1, Footprint::L2).totalBytes();
        const std::size_t mem = w.plan(1, Footprint::Mem).totalBytes();
        // Base: the seed kernels' L1-resident arrays (64KB L1D).
        EXPECT_LE(base, 80 * kib) << w.name;
        // L2: past L1D capacity, within the 256KB L2.
        EXPECT_GE(l2, 112 * kib) << w.name;
        EXPECT_LE(l2, 256 * kib) << w.name;
        // Mem: well past L2.
        EXPECT_GE(mem, 768 * kib) << w.name;
        // Extents must not depend on the scale (the scale multiplies
        // dynamic length; the footprint mode sizes the arrays).
        EXPECT_EQ(l2, w.plan(7, Footprint::L2).totalBytes()) << w.name;
    }
}

TEST(Footprints, L2ModeMissesL1OnEveryWorkload)
{
    const CoreConfig cfg = makeConfig(4, 1, BusMode::WideBusSdv);
    for (const WorkloadSpec &w : allWorkloads()) {
        auto missRate = [&](Footprint fp) {
            const Program p = w.instantiate(1, fp);
            const SimResult r = simulate(cfg, p, 200'000'000);
            EXPECT_TRUE(r.finished && r.verified)
                << w.name << "/" << footprintName(fp);
            return r.l1d.accesses() == 0
                       ? 0.0
                       : double(r.l1d.readMisses + r.l1d.writeMisses) /
                             double(r.l1d.accesses());
        };
        const double base = missRate(Footprint::Base);
        const double l2 = missRate(Footprint::L2);
        // Floor: the grown working set must genuinely stream through
        // L1 — at least 4% of L1D accesses miss, and clearly more
        // than the L1-resident base kernel misses.
        EXPECT_GE(l2, 0.04) << w.name;
        EXPECT_GE(l2, base * 1.25) << w.name;
    }
}

TEST(Footprints, InvalidScaleIsFatalNotClamped)
{
    EXPECT_EXIT(buildWorkload("go", 0),
                ::testing::ExitedWithCode(1), "invalid scale 0");
    EXPECT_EXIT(allWorkloads().front().instantiate(0),
                ::testing::ExitedWithCode(1), "invalid scale 0");
}

TEST(Footprints, DescribeFootprintNamesDominantExtents)
{
    const WorkloadSpec *go = findWorkload("go");
    ASSERT_NE(go, nullptr);
    const std::string d = describeFootprint(*go, 1, Footprint::L2);
    EXPECT_NE(d.find("board"), std::string::npos) << d;
    EXPECT_NE(d.find("KiB"), std::string::npos) << d;
}

TEST(Footprints, UnknownFootprintNameIsFatal)
{
    EXPECT_EXIT(parseFootprint("l3"), ::testing::ExitedWithCode(1),
                "unknown footprint mode");
}

// --- interval sampling ----------------------------------------------

TEST(Sampling, EstimateMatchesTiledFullRunWithinTwoPercent)
{
    // The acceptance bar: at scale >= 4 with L2-resident footprints,
    // a 10-sample x 20k-inst estimate must reproduce the IPC of the
    // full-detail run — every instruction simulated, tiled from the
    // same snapshots so both share the measurement-boundary
    // discipline — within 2% on every workload, while measuring a
    // fraction of the instructions.
    const CoreConfig cfg = makeConfig(4, 1, BusMode::WideBusSdv);
    for (const WorkloadSpec &w : allWorkloads()) {
        Program prog = w.instantiate(4, Footprint::L2);
        prog.predecodeAll();

        sweep::SamplePlan plan;
        plan.samples = 10;
        plan.measureInsts = 20'000;
        plan.warmupInsts = 10'000;
        const sweep::SampleSet set =
            sweep::captureSamples(cfg, prog, plan, 200'000'000);
        ASSERT_TRUE(set.usable()) << w.name;
        EXPECT_EQ(set.samples.front().startInst, 0u);
        EXPECT_EQ(set.samples.front().regionInsts,
                  set.samples.front().measureInsts); // exact cold region

        std::vector<SimResult> est, full;
        std::uint64_t measured = 0;
        for (const sweep::SampleCheckpoint &sc : set.samples) {
            auto fork = [&](std::uint64_t insts) {
                Simulator sim(cfg, prog);
                if (!sc.bytes.empty())
                    EXPECT_TRUE(
                        sweep::Checkpoint::restore(sim, sc.bytes));
                return sim.runInsts(insts, 200'000'000);
            };
            est.push_back(fork(sc.measureInsts));
            full.push_back(fork(sc.regionInsts));
            measured += est.back().core.committedInsts;
        }
        const SimResult e = sweep::aggregateSamples(set, est);
        const SimResult f = sweep::aggregateSamples(set, full);
        EXPECT_TRUE(e.sampled);
        EXPECT_NEAR(e.ipc, f.ipc, f.ipc * 0.02) << w.name;
        // The estimate must be an estimate: for runs long enough to
        // sample, it measures fewer instructions than the full run.
        if (set.totalInsts > 300'000)
            EXPECT_LT(measured, set.totalInsts) << w.name;
    }
}

TEST(Sampling, SampledSweepSerialEqualsParallelByteForByte)
{
    sweep::PlanOptions popt;
    popt.scale = 4;
    popt.footprint = Footprint::L2;
    popt.quick = true;
    const sweep::SweepPlan plan = sweep::buildPlan("fig13", popt);

    sweep::ExecOptions eopt;
    eopt.sample.samples = 3;
    eopt.sample.measureInsts = 20'000;

    eopt.jobs = 1;
    const auto serial = sweep::runPlan(plan, eopt);
    eopt.jobs = 4;
    const auto parallel = sweep::runPlan(plan, eopt);
    ASSERT_EQ(serial.size(), parallel.size());
    for (const auto &o : serial) {
        EXPECT_TRUE(o.res.sampled);
        EXPECT_GT(o.samples, 0u);
    }
    EXPECT_EQ(sweep::resultsJson(serial), sweep::resultsJson(parallel));
}

TEST(Sampling, TooShortProgramsFallBackToExactFullRuns)
{
    sweep::PlanOptions popt;
    popt.quick = true;
    sweep::SweepPlan plan = sweep::buildPlan("fig13", popt);
    plan.jobs.resize(1); // one workload is enough

    sweep::ExecOptions plain;
    const auto exact = sweep::runPlan(plan, plain);

    sweep::ExecOptions sampled = plain;
    sampled.sample.samples = 4;
    // A warm-up longer than the whole program leaves no room for a
    // single warm sample.
    sampled.warmupInsts = 1'000'000'000;
    const auto fallback = sweep::runPlan(plan, sampled);

    ASSERT_EQ(exact.size(), fallback.size());
    EXPECT_FALSE(fallback[0].res.sampled);
    EXPECT_EQ(fallback[0].samples, 0u);
    EXPECT_EQ(exact[0].res.cycles, fallback[0].res.cycles);
    EXPECT_EQ(exact[0].res.insts, fallback[0].res.insts);
    EXPECT_EQ(exact[0].commitHash, fallback[0].commitHash);
}

TEST(Sampling, AggregationWeightsAreExactForIdentityScaling)
{
    // w == m means "scaled by one": aggregating one full-coverage
    // sample must reproduce its input exactly.
    sweep::SampleSet set;
    set.totalInsts = 1000;
    sweep::SampleCheckpoint sc;
    sc.regionInsts = 1000;
    sc.measureInsts = 1000;
    set.samples.push_back(sc);
    set.samples.push_back(sc); // usable() needs a warm sample

    SimResult r;
    r.core.committedInsts = 1000;
    r.core.cycles = 400;
    r.l1d.readMisses = 37;
    SimResult zero;
    zero.core.committedInsts = 0; // dropped from the fold
    const SimResult agg =
        sweep::aggregateSamples(set, {r, zero});
    EXPECT_EQ(agg.core.cycles, 400u);
    EXPECT_EQ(agg.insts, 1000u);
    EXPECT_EQ(agg.l1d.readMisses, 37u);
    EXPECT_DOUBLE_EQ(agg.ipc, 2.5);
}

TEST(Sampling, PlanRegistryListsHeadlineGrid)
{
    EXPECT_TRUE(sweep::havePlan("headline"));
    const auto grid = sweep::figureGrid("headline");
    ASSERT_EQ(grid.size(), 4u);
    EXPECT_EQ(grid[0].key(), "4w-1pV");
    EXPECT_EQ(grid[3].key(), "8w-4pnoIM");
}

} // namespace
} // namespace sdv
