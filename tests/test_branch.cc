/**
 * @file
 * Unit tests for the branch prediction structures: gshare, BTB, RAS.
 */

#include <gtest/gtest.h>

#include "branch/btb.hh"
#include "branch/gshare.hh"
#include "branch/ras.hh"

namespace sdv {
namespace {

TEST(Gshare, LearnsAlwaysTaken)
{
    Gshare g(1024, 8);
    const Addr pc = 0x10000;
    // The history register shifts on every update, so the steady-state
    // entry (history == all ones) only starts training once the history
    // has saturated; train well past that point.
    for (int i = 0; i < 24; ++i)
        g.update(pc, true);
    EXPECT_TRUE(g.predict(pc));
}

TEST(Gshare, LearnsAlwaysNotTaken)
{
    Gshare g(1024, 8);
    const Addr pc = 0x10000;
    for (int i = 0; i < 8; ++i)
        g.update(pc, false);
    EXPECT_FALSE(g.predict(pc));
}

TEST(Gshare, LearnsAlternatingPatternThroughHistory)
{
    // A strict T/NT alternation is perfectly predictable once the
    // history register disambiguates the two phases.
    Gshare g(64 * 1024, 16);
    const Addr pc = 0x20000;
    bool taken = false;
    // Warm up.
    for (int i = 0; i < 200; ++i) {
        g.update(pc, taken);
        taken = !taken;
    }
    // Measure.
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        if (g.predict(pc) == taken)
            ++correct;
        g.update(pc, taken);
        taken = !taken;
    }
    EXPECT_GE(correct, 95);
}

TEST(Gshare, HistoryShiftsAndMasks)
{
    Gshare g(256, 4);
    g.update(0, true);
    g.update(0, true);
    g.update(0, false);
    g.update(0, true);
    EXPECT_EQ(g.history(), 0b1101u);
    g.update(0, true);
    EXPECT_EQ(g.history(), 0b1011u); // 4-bit mask drops the oldest bit
}

TEST(Gshare, ResetClearsState)
{
    Gshare g(256, 4);
    for (int i = 0; i < 4; ++i)
        g.update(0x40, true);
    g.reset();
    EXPECT_EQ(g.history(), 0u);
    EXPECT_FALSE(g.predict(0x40)); // back to weakly not-taken
}

/** Property sweep: table sizes and history lengths stay consistent. */
class GshareGeometry
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{};

TEST_P(GshareGeometry, BiasedBranchIsLearnedEverywhere)
{
    const auto [entries, hist] = GetParam();
    Gshare g(entries, hist);
    // 32 distinct always-taken branches.
    for (int round = 0; round < 6; ++round)
        for (Addr pc = 0x1000; pc < 0x1000 + 32 * 8; pc += 8)
            g.update(pc, true);
    int correct = 0;
    for (Addr pc = 0x1000; pc < 0x1000 + 32 * 8; pc += 8)
        if (g.predict(pc))
            ++correct;
    // With aliasing some entries may fight, but a strong majority must
    // be learned for any geometry.
    EXPECT_GE(correct, 28);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GshareGeometry,
    ::testing::Combine(::testing::Values(256u, 4096u, 65536u),
                       ::testing::Values(4u, 8u, 16u)));

TEST(Btb, MissThenHit)
{
    Btb btb(64, 2);
    Addr target = 0;
    EXPECT_FALSE(btb.lookup(0x1000, target));
    btb.update(0x1000, 0x2000);
    ASSERT_TRUE(btb.lookup(0x1000, target));
    EXPECT_EQ(target, 0x2000u);
    EXPECT_EQ(btb.hits(), 1u);
    EXPECT_EQ(btb.lookups(), 2u);
}

TEST(Btb, UpdateOverwritesTarget)
{
    Btb btb(64, 2);
    btb.update(0x1000, 0x2000);
    btb.update(0x1000, 0x3000);
    Addr target = 0;
    ASSERT_TRUE(btb.lookup(0x1000, target));
    EXPECT_EQ(target, 0x3000u);
}

TEST(Btb, LruEvictionWithinSet)
{
    Btb btb(1, 2); // single set, 2 ways
    btb.update(0x1000, 0xa);
    btb.update(0x2000, 0xb);
    Addr t;
    ASSERT_TRUE(btb.lookup(0x1000, t)); // touch 0x1000: now MRU
    btb.update(0x3000, 0xc);            // evicts 0x2000
    EXPECT_TRUE(btb.lookup(0x1000, t));
    EXPECT_FALSE(btb.lookup(0x2000, t));
    EXPECT_TRUE(btb.lookup(0x3000, t));
}

TEST(Ras, PushPopOrder)
{
    ReturnAddressStack ras(4);
    ras.push(0x100);
    ras.push(0x200);
    Addr out = 0;
    ASSERT_TRUE(ras.pop(out));
    EXPECT_EQ(out, 0x200u);
    ASSERT_TRUE(ras.pop(out));
    EXPECT_EQ(out, 0x100u);
    EXPECT_FALSE(ras.pop(out));
}

TEST(Ras, OverflowWrapsKeepingNewest)
{
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3); // overwrites 1
    Addr out = 0;
    ASSERT_TRUE(ras.pop(out));
    EXPECT_EQ(out, 3u);
    ASSERT_TRUE(ras.pop(out));
    EXPECT_EQ(out, 2u);
    EXPECT_FALSE(ras.pop(out));
}

TEST(Ras, ResetEmpties)
{
    ReturnAddressStack ras(4);
    ras.push(7);
    ras.reset();
    Addr out = 0;
    EXPECT_FALSE(ras.pop(out));
    EXPECT_EQ(ras.size(), 0u);
}

} // namespace
} // namespace sdv
