/**
 * @file
 * Tests of the sweep subsystem: checkpoint capture/restore bit-identity
 * (restore-then-run equals warmup-then-continue on every tier-1
 * workload, statistics and commit hashes included), corrupted /
 * truncated snapshot rejection, cross-configuration restores, the plan
 * registry, and executor determinism (parallel == serial, checkpointed
 * or not).
 */

#include <cstdio>
#include <deque>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "sweep/checkpoint.hh"
#include "sweep/executor.hh"
#include "sweep/plan.hh"
#include "workloads/workload.hh"

namespace sdv {
namespace {

std::deque<Program> &
keeper()
{
    static std::deque<Program> progs;
    return progs;
}

const Program &
keep(Program &&p)
{
    keeper().push_back(std::move(p));
    return keeper().back();
}

/** Full-fidelity comparison of two runs: every statistic any figure is
 *  built from, plus the committed-stream hash. */
void
expectIdenticalResults(const SimResult &a, const SimResult &b,
                       std::uint64_t hash_a, std::uint64_t hash_b,
                       const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(a.finished, b.finished);
    EXPECT_EQ(a.verified, b.verified);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_EQ(hash_a, hash_b);

    const CoreStats &ca = a.core, &cb = b.core;
    EXPECT_EQ(ca.cycles, cb.cycles);
    EXPECT_EQ(ca.committedInsts, cb.committedInsts);
    EXPECT_EQ(ca.committedLoads, cb.committedLoads);
    EXPECT_EQ(ca.committedStores, cb.committedStores);
    EXPECT_EQ(ca.committedBranches, cb.committedBranches);
    EXPECT_EQ(ca.committedValidations, cb.committedValidations);
    EXPECT_EQ(ca.committedLoadValidations, cb.committedLoadValidations);
    EXPECT_EQ(ca.scalarLoadAccesses, cb.scalarLoadAccesses);
    EXPECT_EQ(ca.loadForwards, cb.loadForwards);
    EXPECT_EQ(ca.branchMispredicts, cb.branchMispredicts);
    EXPECT_EQ(ca.fetchStallCycles, cb.fetchStallCycles);
    EXPECT_EQ(ca.fetchStallValWaitCycles, cb.fetchStallValWaitCycles);
    EXPECT_EQ(ca.decodeBlockCycles, cb.decodeBlockCycles);
    EXPECT_EQ(ca.robFullStalls, cb.robFullStalls);
    EXPECT_EQ(ca.lsqFullStalls, cb.lsqFullStalls);
    EXPECT_EQ(ca.storeConflictSquashes, cb.storeConflictSquashes);
    EXPECT_EQ(ca.squashedInsts, cb.squashedInsts);
    EXPECT_EQ(ca.postMispredictWindowInsts, cb.postMispredictWindowInsts);
    EXPECT_EQ(ca.postMispredictReused, cb.postMispredictReused);
    EXPECT_EQ(ca.eventSkipJumps, cb.eventSkipJumps);
    EXPECT_EQ(ca.eventSkippedCycles, cb.eventSkippedCycles);

    EXPECT_EQ(a.engine.loadSpawns, b.engine.loadSpawns);
    EXPECT_EQ(a.engine.loadChainSpawns, b.engine.loadChainSpawns);
    EXPECT_EQ(a.engine.arithSpawns, b.engine.arithSpawns);
    EXPECT_EQ(a.engine.arithChainSpawns, b.engine.arithChainSpawns);
    EXPECT_EQ(a.engine.loadValidations, b.engine.loadValidations);
    EXPECT_EQ(a.engine.arithValidations, b.engine.arithValidations);
    EXPECT_EQ(a.engine.loadAddrMisspecs, b.engine.loadAddrMisspecs);
    EXPECT_EQ(a.engine.arithOperandMisspecs,
              b.engine.arithOperandMisspecs);
    EXPECT_EQ(a.engine.storesChecked, b.engine.storesChecked);
    EXPECT_EQ(a.engine.storeRangeConflicts, b.engine.storeRangeConflicts);
    EXPECT_EQ(a.engine.decodeBlockEvents, b.engine.decodeBlockEvents);
    EXPECT_EQ(a.engine.lateValidationFallbacks,
              b.engine.lateValidationFallbacks);
    EXPECT_EQ(a.engine.validationValueMismatches,
              b.engine.validationValueMismatches);

    EXPECT_EQ(a.datapath.instancesSpawned, b.datapath.instancesSpawned);
    EXPECT_EQ(a.datapath.elemsComputed, b.datapath.elemsComputed);
    EXPECT_EQ(a.datapath.elemLoadAccessesIssued,
              b.datapath.elemLoadAccessesIssued);
    EXPECT_EQ(a.datapath.elemLoadsRideAlong, b.datapath.elemLoadsRideAlong);
    EXPECT_EQ(a.datapath.instancesAborted, b.datapath.instancesAborted);

    EXPECT_EQ(a.ports.cycles, b.ports.cycles);
    EXPECT_EQ(a.ports.busyPortCycles, b.ports.busyPortCycles);
    EXPECT_EQ(a.ports.readAccesses, b.ports.readAccesses);
    EXPECT_EQ(a.ports.writeAccesses, b.ports.writeAccesses);
    EXPECT_EQ(a.ports.wordsServed, b.ports.wordsServed);
    EXPECT_EQ(a.wideBus.totalReads, b.wideBus.totalReads);
    for (unsigned n = 0; n <= 4; ++n)
        EXPECT_EQ(a.wideBus.usefulWords[n], b.wideBus.usefulWords[n]);

    EXPECT_EQ(a.fates.regsReleased, b.fates.regsReleased);
    EXPECT_EQ(a.fates.elemsComputedUsed, b.fates.elemsComputedUsed);
    EXPECT_EQ(a.fates.elemsComputedNotUsed, b.fates.elemsComputedNotUsed);
    EXPECT_EQ(a.fates.elemsNotComputed, b.fates.elemsNotComputed);

    auto expect_cache_eq = [](const CacheStats &x, const CacheStats &y) {
        EXPECT_EQ(x.readAccesses, y.readAccesses);
        EXPECT_EQ(x.readMisses, y.readMisses);
        EXPECT_EQ(x.writeAccesses, y.writeAccesses);
        EXPECT_EQ(x.writeMisses, y.writeMisses);
        EXPECT_EQ(x.writebacks, y.writebacks);
    };
    expect_cache_eq(a.l1d, b.l1d);
    expect_cache_eq(a.l1i, b.l1i);
    expect_cache_eq(a.l2, b.l2);
}

constexpr std::uint64_t warmupInsts = 5'000;

// --- checkpoint round trips ------------------------------------------------

TEST(Checkpoint, RestoreThenRunMatchesStraightThroughOnEveryWorkload)
{
    for (const Workload &w : allWorkloads()) {
        const Program &prog = keep(w.instantiate(1));
        const CoreConfig cfg = makeConfig(4, 1, BusMode::WideBusSdv);

        // Path A: warm up, then continue in place.
        Simulator cont(cfg, prog);
        if (!cont.warmup(warmupInsts)) {
            ADD_FAILURE() << w.name << " finished inside the warm-up";
            continue;
        }
        const SimResult ra = cont.run(50'000'000, /*verify=*/true);

        // Path B: warm up, capture, restore into a fresh simulator
        // (through the serialized byte image), then run.
        Simulator warm(cfg, prog);
        ASSERT_TRUE(warm.warmup(warmupInsts));
        const std::vector<std::uint8_t> bytes =
            sweep::Checkpoint::capture(warm);
        EXPECT_GT(bytes.size(), 64u);

        Simulator restored(cfg, prog);
        std::string err;
        ASSERT_TRUE(sweep::Checkpoint::restore(restored, bytes, &err))
            << err;
        const SimResult rb = restored.run(50'000'000, /*verify=*/true);

        ASSERT_TRUE(ra.finished) << w.name;
        EXPECT_TRUE(ra.verified) << w.name;
        EXPECT_TRUE(rb.verified) << w.name;
        expectIdenticalResults(ra, rb, cont.core().commitPcHash(),
                               restored.core().commitPcHash(), w.name);
    }
}

TEST(Checkpoint, FileRoundTrip)
{
    const Program &prog = keep(buildWorkload("compress", 1));
    const CoreConfig cfg = makeConfig(4, 1, BusMode::WideBusSdv);
    Simulator warm(cfg, prog);
    ASSERT_TRUE(warm.warmup(warmupInsts));
    const auto bytes = sweep::Checkpoint::capture(warm);

    const std::string path = ::testing::TempDir() + "sdv_test.ckpt";
    ASSERT_TRUE(sweep::Checkpoint::save(path, bytes));
    std::vector<std::uint8_t> loaded;
    ASSERT_EQ(sweep::Checkpoint::LoadStatus::Ok,
              sweep::Checkpoint::load(path, loaded));
    EXPECT_EQ(bytes, loaded);
    std::remove(path.c_str());

    Simulator restored(cfg, prog);
    ASSERT_TRUE(sweep::Checkpoint::restore(restored, loaded));
    EXPECT_TRUE(restored.run(50'000'000, /*verify=*/true).verified);
}

TEST(Checkpoint, RejectsCorruptedAndTruncatedImages)
{
    const Program &prog = keep(buildWorkload("go", 1));
    const CoreConfig cfg = makeConfig(4, 1, BusMode::WideBusSdv);
    Simulator warm(cfg, prog);
    ASSERT_TRUE(warm.warmup(warmupInsts));
    const auto bytes = sweep::Checkpoint::capture(warm);

    // Pristine image restores.
    {
        Simulator sim(cfg, prog);
        EXPECT_TRUE(sweep::Checkpoint::restore(sim, bytes));
    }
    // Truncations of any length are rejected by the checksum.
    for (size_t keep_bytes : {size_t(0), size_t(7), bytes.size() / 2,
                              bytes.size() - 1}) {
        auto trunc = bytes;
        trunc.resize(keep_bytes);
        Simulator sim(cfg, prog);
        std::string err;
        EXPECT_FALSE(sweep::Checkpoint::restore(sim, trunc, &err))
            << "kept " << keep_bytes;
        EXPECT_FALSE(err.empty());
    }
    // Single-bit corruption anywhere (header, payload, trailer).
    for (size_t pos : {size_t(0), size_t(9), bytes.size() / 3,
                       bytes.size() - 2}) {
        auto bad = bytes;
        bad[pos] ^= 0x40;
        Simulator sim(cfg, prog);
        std::string err;
        EXPECT_FALSE(sweep::Checkpoint::restore(sim, bad, &err))
            << "flipped byte " << pos;
    }
    // A checkpoint from a different program is rejected.
    {
        const Program &other = keep(buildWorkload("li", 1));
        Simulator sim(cfg, other);
        std::string err;
        EXPECT_FALSE(sweep::Checkpoint::restore(sim, bytes, &err));
        EXPECT_NE(err.find("different program"), std::string::npos);
    }
}

TEST(Checkpoint, ForksAcrossTheTable1Grid)
{
    // One warmed snapshot (4-way, 1 wide port, SDV) must restore into
    // every machine of the Figure 11 matrix: widths, port counts, bus
    // flavours and engine on/off all vary, the warm-structure geometry
    // does not.
    const Program &prog = keep(buildWorkload("swim", 1));
    Simulator warm(makeConfig(4, 1, BusMode::WideBusSdv), prog);
    ASSERT_TRUE(warm.warmup(warmupInsts));
    const auto bytes = sweep::Checkpoint::capture(warm);

    for (unsigned width : {4u, 8u}) {
        for (unsigned ports : {1u, 2u, 4u}) {
            for (BusMode mode : {BusMode::ScalarBus, BusMode::WideBus,
                                 BusMode::WideBusSdv}) {
                Simulator sim(makeConfig(width, ports, mode), prog);
                std::string err;
                ASSERT_TRUE(
                    sweep::Checkpoint::restore(sim, bytes, &err))
                    << configLabel(ports, mode) << ": " << err;
                const SimResult r = sim.run(50'000'000, /*verify=*/true);
                EXPECT_TRUE(r.finished);
                EXPECT_TRUE(r.verified)
                    << width << "-way " << configLabel(ports, mode);
            }
        }
    }

    // Geometry mismatch is detected before any state moves.
    CoreConfig small = makeConfig(4, 1, BusMode::WideBusSdv);
    small.mem.l1dSize = 16 * 1024;
    Simulator sim(small, prog);
    std::string err;
    EXPECT_FALSE(sweep::Checkpoint::restore(sim, bytes, &err));
    EXPECT_NE(err.find("geometry"), std::string::npos);
}

// --- plan registry ---------------------------------------------------------

TEST(SweepPlan, RegistryCoversEveryFigureGrid)
{
    EXPECT_TRUE(sweep::havePlan("fig11"));
    EXPECT_TRUE(sweep::havePlan("all"));
    EXPECT_FALSE(sweep::havePlan("fig99"));

    // The Figure 11 matrix: 2 widths x 3 port counts x 3 bus modes.
    EXPECT_EQ(sweep::figureGrid("fig11").size(), 18u);
    EXPECT_EQ(sweep::figureGrid("fig07").size(), 2u);

    sweep::PlanOptions opt;
    opt.quick = true;
    for (const sweep::PlanInfo &info : sweep::allPlans()) {
        const sweep::SweepPlan plan = sweep::buildPlan(info.name, opt);
        EXPECT_FALSE(plan.jobs.empty()) << info.name;
        // Quick mode: 2 INT + 1 FP workloads — except the attack plan,
        // whose suite is the 2-workload timing-channel pair (quick mode
        // cannot shrink it further).
        const std::size_t suite =
            info.name == "attack" ? attackWorkloads().size() : 3;
        if (info.name != "all")
            EXPECT_EQ(plan.jobs.size(),
                      suite * sweep::figureGrid(info.name).size())
                << info.name;
        // Per-job seeds are distinct and reproducible.
        for (const sweep::SweepJob &job : plan.jobs)
            EXPECT_EQ(job.seed,
                      deriveSeed(job.workload,
                                 job.figure + ":" + job.configKey, 0));
    }
}

TEST(SweepPlan, SeedsAreStreamAndOrderIndependent)
{
    // Same (workload, config, seed) -> same stream; any difference ->
    // a different stream.
    EXPECT_EQ(deriveSeed("go", "fig11:8w/1pV", 7),
              deriveSeed("go", "fig11:8w/1pV", 7));
    EXPECT_NE(deriveSeed("go", "fig11:8w/1pV", 7),
              deriveSeed("go", "fig11:8w/1pV", 8));
    EXPECT_NE(deriveSeed("go", "fig11:8w/1pV", 7),
              deriveSeed("gcc", "fig11:8w/1pV", 7));
    EXPECT_NE(deriveSeed("go", "fig11:8w/1pV", 7),
              deriveSeed("go", "fig11:8w/2pV", 7));
    // The (workload, config) split is not ambiguous under
    // concatenation.
    EXPECT_NE(deriveSeed("ab", "c", 0), deriveSeed("a", "bc", 0));

    Random base(42);
    Random f1 = base.fork(1);
    Random f2 = base.fork(2);
    EXPECT_NE(f1.next(), f2.next());
}

// --- executor determinism --------------------------------------------------

TEST(SweepExecutor, ParallelMatchesSerialByteForByte)
{
    sweep::PlanOptions popt;
    popt.quick = true;
    const sweep::SweepPlan plan = sweep::buildPlan("fig07", popt);

    sweep::ExecOptions serial;
    serial.jobs = 1;
    sweep::ExecOptions parallel;
    parallel.jobs = 4;

    const std::string a =
        sweep::resultsJson(sweep::runPlan(plan, serial));
    const std::string b =
        sweep::resultsJson(sweep::runPlan(plan, parallel));
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"workload\""), std::string::npos);
}

TEST(SweepExecutor, CheckpointedSweepIsDeterministicAndVerified)
{
    sweep::PlanOptions popt;
    popt.quick = true;
    const sweep::SweepPlan plan = sweep::buildPlan("fig13", popt);

    sweep::ExecOptions opt;
    opt.checkpoint = true;
    opt.warmupInsts = warmupInsts;
    opt.verify = true;

    opt.jobs = 1;
    const auto serial = sweep::runPlan(plan, opt);
    opt.jobs = 2;
    const auto parallel = sweep::runPlan(plan, opt);

    ASSERT_EQ(serial.size(), plan.jobs.size());
    for (const sweep::RunOutcome &o : serial) {
        EXPECT_TRUE(o.fromCheckpoint) << o.workload;
        EXPECT_TRUE(o.res.verified) << o.workload;
    }
    EXPECT_EQ(sweep::resultsJson(serial), sweep::resultsJson(parallel));
}

// --- program sharing -------------------------------------------------------

TEST(SweepExecutor, PredecodedProgramsAreStableUnderConcurrentReads)
{
    // predecodeAll() must leave instAt() a pure read: same cached slot,
    // same contents, no lazy-fill writes left to race on.
    Program p = buildWorkload("go", 1);
    p.predecodeAll();
    const Addr pc = p.entry();
    const Instruction &a = p.instAt(pc);
    const Instruction &b = p.instAt(pc);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(p.encodedAt(pc), a.encode());
}

} // namespace
} // namespace sdv
