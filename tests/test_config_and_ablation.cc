/**
 * @file
 * Tests of the configuration presets (Table 1) and of the mechanism's
 * behaviour under resource ablation: shrinking the vector register
 * file, changing the vector length or the confidence threshold must
 * degrade gracefully and never break correctness.
 */

#include <deque>

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace sdv {
namespace {

TEST(Config, Table1FourWay)
{
    const CoreConfig c = makeConfig(4, 1, BusMode::WideBusSdv);
    EXPECT_EQ(c.fetchWidth, 4u);
    EXPECT_EQ(c.robEntries, 128u);
    EXPECT_EQ(c.lsqEntries, 32u);
    EXPECT_EQ(c.fu.intAlu, 3u);
    EXPECT_EQ(c.fu.intMulDiv, 2u);
    EXPECT_EQ(c.fu.fpAdd, 2u);
    EXPECT_EQ(c.fu.fpMulDiv, 1u);
    EXPECT_EQ(c.maxStoresPerCycle, 2u);
    EXPECT_EQ(c.gshareEntries, 64u * 1024u);
    EXPECT_EQ(c.engine.numVregs, 128u);
    EXPECT_EQ(c.engine.vlen, 4u);
    EXPECT_EQ(c.engine.tlSets, 512u);
    EXPECT_EQ(c.engine.vrmtSets, 64u);
    EXPECT_TRUE(c.widePorts);
    EXPECT_TRUE(c.engine.enabled);
}

TEST(Config, Table1EightWay)
{
    const CoreConfig c = makeConfig(8, 2, BusMode::WideBus);
    EXPECT_EQ(c.fetchWidth, 8u);
    EXPECT_EQ(c.robEntries, 256u);
    EXPECT_EQ(c.lsqEntries, 64u);
    EXPECT_EQ(c.fu.intAlu, 6u);
    EXPECT_EQ(c.fu.fpAdd, 4u);
    EXPECT_EQ(c.dcachePorts, 2u);
    EXPECT_TRUE(c.widePorts);
    EXPECT_FALSE(c.engine.enabled);
}

TEST(Config, ScalarBusDisablesWidePortsAndEngine)
{
    const CoreConfig c = makeConfig(4, 4, BusMode::ScalarBus);
    EXPECT_FALSE(c.widePorts);
    EXPECT_FALSE(c.engine.enabled);
    EXPECT_EQ(c.dcachePorts, 4u);
}

TEST(Config, LabelsMatchPaper)
{
    EXPECT_EQ(configLabel(1, BusMode::ScalarBus), "1pnoIM");
    EXPECT_EQ(configLabel(2, BusMode::WideBus), "2pIM");
    EXPECT_EQ(configLabel(4, BusMode::WideBusSdv), "4pV");
}

TEST(Config, StorageCostMatchesSection41)
{
    const StorageCost cost =
        storageCost(makeConfig(4, 1, BusMode::WideBusSdv));
    EXPECT_EQ(cost.vectorRegisterFileBytes, 4096u);
    EXPECT_EQ(cost.vrmtBytes, 4608u);
    EXPECT_EQ(cost.tlBytes, 49152u);
    EXPECT_EQ(cost.totalBytes(), 57856u); // "~56KB"
}

TEST(Config, Fig10WindowDefaultsToThePapersHundred)
{
    // The post-mispredict measurement window (Figure 10) is a config
    // knob with the paper's value as default; an explicit 100 must
    // reproduce the default's statistics exactly.
    const Program prog = buildWorkload("go", 1);
    const CoreConfig base = makeConfig(4, 1, BusMode::WideBusSdv);
    ASSERT_EQ(base.fig10WindowInsts, 100u);

    CoreConfig explicit100 = base;
    explicit100.fig10WindowInsts = 100;
    const SimResult a = simulate(base, prog, 50'000'000, false);
    const SimResult b = simulate(explicit100, prog, 50'000'000, false);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.core.postMispredictWindowInsts,
              b.core.postMispredictWindowInsts);
    EXPECT_EQ(a.core.postMispredictReused, b.core.postMispredictReused);
    EXPECT_DOUBLE_EQ(a.controlIndependenceFraction(),
                     b.controlIndependenceFraction());
}

TEST(Config, Fig10WindowIsAblatable)
{
    // Shrinking the window must not change the timing model, only the
    // Figure 10 measurement: fewer instructions are counted per
    // mispredict, and never more than window * mispredicts.
    const Program prog = buildWorkload("go", 1);
    const CoreConfig base = makeConfig(4, 1, BusMode::WideBusSdv);
    CoreConfig narrow = base;
    narrow.fig10WindowInsts = 10;
    const SimResult a = simulate(base, prog, 50'000'000, false);
    const SimResult b = simulate(narrow, prog, 50'000'000, false);
    EXPECT_EQ(a.cycles, b.cycles); // measurement only, no timing effect
    ASSERT_GT(a.core.branchMispredicts, 0u);
    EXPECT_GT(a.core.postMispredictWindowInsts,
              b.core.postMispredictWindowInsts);
    EXPECT_LE(b.core.postMispredictWindowInsts,
              10u * b.core.branchMispredicts);
}

std::deque<Program> &
keeper()
{
    static std::deque<Program> progs;
    return progs;
}

/** Ablation sweeps must stay correct (verified) on a real workload. */
class AblationSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{};

TEST_P(AblationSweep, ShrunkResourcesStayCorrect)
{
    const auto [vregs, vlen] = GetParam();
    keeper().push_back(buildWorkload("m88ksim", 1));
    const Program &prog = keeper().back();

    CoreConfig cfg = makeConfig(4, 1, BusMode::WideBusSdv);
    cfg.engine.numVregs = vregs;
    cfg.engine.vlen = vlen;
    const SimResult r = simulate(cfg, prog);
    ASSERT_TRUE(r.finished);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.engine.validationValueMismatches, 0u);
    if (vregs >= 16)
        EXPECT_GT(r.core.committedValidations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AblationSweep,
    ::testing::Combine(::testing::Values(8u, 32u, 128u),
                       ::testing::Values(2u, 4u, 8u)));

TEST(Ablation, MoreVregsNeverHurtMuch)
{
    keeper().push_back(buildWorkload("swim", 1));
    const Program &prog = keeper().back();
    CoreConfig small = makeConfig(4, 1, BusMode::WideBusSdv);
    small.engine.numVregs = 8;
    CoreConfig large = makeConfig(4, 1, BusMode::WideBusSdv);
    const SimResult rs = simulate(small, prog, 50'000'000, false);
    const SimResult rl = simulate(large, prog, 50'000'000, false);
    EXPECT_LE(double(rl.cycles), double(rs.cycles) * 1.02);
}

TEST(Ablation, ConfidenceOneSpawnsMoreAggressively)
{
    // A lower confidence threshold detects patterns after a single
    // stride repeat, so more speculative element loads are issued
    // overall (hit or miss).
    keeper().push_back(buildWorkload("go", 1));
    const Program &prog = keeper().back();
    CoreConfig eager = makeConfig(4, 1, BusMode::WideBusSdv);
    eager.engine.tlConfidence = 1;
    CoreConfig paper = makeConfig(4, 1, BusMode::WideBusSdv);
    const SimResult re = simulate(eager, prog, 50'000'000, false);
    const SimResult rp = simulate(paper, prog, 50'000'000, false);
    const auto issued = [](const SimResult &r) {
        return r.datapath.elemLoadAccessesIssued +
               r.datapath.elemLoadsRideAlong;
    };
    EXPECT_GT(issued(re), issued(rp));
    EXPECT_TRUE(re.finished && rp.finished);
}

TEST(Ablation, DisabledEngineProducesNoVectorActivity)
{
    keeper().push_back(buildWorkload("li", 1));
    const Program &prog = keeper().back();
    const SimResult r =
        simulate(makeConfig(4, 1, BusMode::WideBus), prog);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.core.committedValidations, 0u);
    EXPECT_EQ(r.engine.loadSpawns, 0u);
    EXPECT_EQ(r.datapath.instancesSpawned, 0u);
    EXPECT_EQ(r.fates.regsReleased, 0u);
}

} // namespace
} // namespace sdv
