/**
 * @file
 * Unit tests for the hot-path kernel structures: sparse memory
 * cross-page / unaligned / bulk accesses (with the MRU page cache), the
 * pending-store overlay (interval early-exits and word-at-a-time
 * masking) replayed against a naive byte-wise reference model, and the
 * pooled ROB ring buffer.
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "arch/memory.hh"
#include "common/histogram.hh"
#include "common/random.hh"
#include "common/ring_pool.hh"
#include "core/lsq.hh"
#include "core/store_overlay.hh"
#include "vector/vreg_file.hh"
#include "vector/vrmt.hh"

namespace sdv {
namespace {

// --- SparseMemory ----------------------------------------------------------

TEST(SparseMemoryHot, UnalignedSingleAndCrossPageAllSizes)
{
    const Addr page = SparseMemory::pageBytes;
    // Offsets chosen so every size is exercised aligned, unaligned
    // within a page, and straddling the page boundary.
    const Addr bases[] = {0x100, 0x103, page - 1, page - 3, page - 7,
                          3 * page - 5};
    const std::uint64_t pattern = 0x1122334455667788ULL;
    for (Addr base : bases) {
        for (unsigned size : {1u, 2u, 4u, 8u}) {
            SparseMemory m;
            m.write(base, pattern, size);
            const std::uint64_t mask =
                size == 8 ? ~std::uint64_t(0)
                          : (std::uint64_t(1) << (8 * size)) - 1;
            EXPECT_EQ(m.read(base, size), pattern & mask)
                << "base=" << base << " size=" << size;
            // Bytes readable individually in little-endian order.
            for (unsigned i = 0; i < size; ++i)
                EXPECT_EQ(m.read(base + i, 1),
                          (pattern >> (8 * i)) & 0xff);
        }
    }
}

TEST(SparseMemoryHot, MruCacheSurvivesInterleavedPagesAndClear)
{
    SparseMemory mem;
    const Addr page = SparseMemory::pageBytes;
    // Ping-pong between pages so the MRU entry is repeatedly replaced.
    for (unsigned round = 0; round < 4; ++round)
        for (Addr p = 0; p < 8; ++p)
            mem.write64(p * page + 8 * round, p * 1000 + round);
    for (unsigned round = 0; round < 4; ++round)
        for (Addr p = 0; p < 8; ++p)
            EXPECT_EQ(mem.read64(p * page + 8 * round), p * 1000 + round);
    mem.clear();
    EXPECT_EQ(mem.numPages(), 0u);
    // The cleared cache must not serve stale pages.
    EXPECT_EQ(mem.read64(0), 0u);
    mem.write64(0, 42);
    EXPECT_EQ(mem.read64(0), 42u);
}

TEST(SparseMemoryHot, ReadAfterWriteMaterializesBehindConstReads)
{
    SparseMemory mem;
    // A read of an absent page must not poison the cache: the write
    // that materializes the page afterwards has to become visible.
    EXPECT_EQ(mem.read64(0x5000), 0u);
    mem.write64(0x5000, 7);
    EXPECT_EQ(mem.read64(0x5000), 7u);
}

TEST(SparseMemoryHot, BulkBytesSpanManyPages)
{
    SparseMemory mem;
    const Addr base = SparseMemory::pageBytes - 100;
    std::vector<std::uint8_t> data(3 * SparseMemory::pageBytes);
    Random rng(7);
    for (auto &b : data)
        b = std::uint8_t(rng.next());

    mem.writeBytes(base, data.data(), data.size());
    std::vector<std::uint8_t> out(data.size() + 16, 0xaa);
    // Read a window that starts before the written range (zero fill)
    // and covers it completely.
    mem.readBytes(base - 8, out.data(), out.size());
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(out[i], 0u) << "leading zero fill byte " << i;
    EXPECT_EQ(std::memcmp(out.data() + 8, data.data(), data.size()), 0);
    for (size_t i = data.size() + 8; i < out.size(); ++i)
        EXPECT_EQ(out[i], 0u) << "trailing zero fill byte " << i;
}

TEST(SparseMemoryHot, RandomOpsMatchByteReference)
{
    // Equivalence against a naive byte map across random sizes,
    // alignments and page boundaries.
    SparseMemory mem;
    std::vector<std::uint8_t> ref(16 * SparseMemory::pageBytes, 0);
    Random rng(123);
    const unsigned sizes[] = {1, 2, 4, 8};
    for (unsigned op = 0; op < 20000; ++op) {
        const unsigned size = sizes[rng.below(4)];
        const Addr addr = rng.below(ref.size() - 8);
        if (rng.chancePercent(50)) {
            const std::uint64_t val = rng.next();
            mem.write(addr, val, size);
            for (unsigned i = 0; i < size; ++i)
                ref[addr + i] = std::uint8_t(val >> (8 * i));
        } else {
            std::uint64_t expect = 0;
            for (unsigned i = 0; i < size; ++i)
                expect |= std::uint64_t(ref[addr + i]) << (8 * i);
            ASSERT_EQ(mem.read(addr, size), expect)
                << "addr=" << addr << " size=" << size;
        }
    }
}

// --- PendingStoreOverlay ---------------------------------------------------

/** Naive reference: apply pre-images youngest-first, byte by byte. */
std::uint64_t
naiveOverlay(const std::vector<PendingStore> &stores, std::uint64_t val,
             Addr addr, unsigned size)
{
    for (auto it = stores.rbegin(); it != stores.rend(); ++it) {
        for (unsigned b = 0; b < size; ++b) {
            const Addr byte_addr = addr + b;
            if (byte_addr >= it->addr &&
                byte_addr < it->addr + it->size) {
                const unsigned sidx = unsigned(byte_addr - it->addr);
                const std::uint64_t pre =
                    (it->preValue >> (8 * sidx)) & 0xff;
                val &= ~(0xffULL << (8 * b));
                val |= pre << (8 * b);
            }
        }
    }
    return val;
}

TEST(StoreOverlay, EmptyAndDisjointPassThrough)
{
    PendingStoreOverlay ov;
    EXPECT_EQ(ov.overlay(0xdeadbeef, 0x1000, 4), 0xdeadbeefULL);
    ov.push(0x2000, 8, 0x1111111111111111ULL);
    // Entirely below and entirely above the store's range.
    EXPECT_EQ(ov.overlay(0x42, 0x1ff8, 8), 0x42ULL);
    EXPECT_EQ(ov.overlay(0x42, 0x2008, 8), 0x42ULL);
    // Adjacent but not overlapping.
    EXPECT_EQ(ov.overlay(0x42, 0x1ffc, 4), 0x42ULL);
}

TEST(StoreOverlay, OldestPreImageWinsPerByte)
{
    PendingStoreOverlay ov;
    ov.push(0x100, 8, 0x0101010101010101ULL); // oldest
    ov.push(0x104, 8, 0x0202020202020202ULL); // younger, overlaps tail
    // Bytes 0x100..0x107: all covered by the oldest store; its
    // pre-image is the committed state there.
    EXPECT_EQ(ov.overlay(0xffffffffffffffffULL, 0x100, 8),
              0x0101010101010101ULL);
    // Bytes 0x108..0x10b: only the younger store covers them. Bytes
    // beyond the 4-byte load size pass through untouched.
    EXPECT_EQ(ov.overlay(0, 0x108, 4), 0x02020202ULL);
}

TEST(StoreOverlay, FifoDrainResetsHull)
{
    PendingStoreOverlay ov;
    ov.push(0x100, 8, 1);
    ov.push(0x200, 4, 2);
    EXPECT_EQ(ov.size(), 2u);
    EXPECT_EQ(ov.front().addr, 0x100u);
    ov.popFront();
    ov.popFront();
    EXPECT_TRUE(ov.empty());
    // After draining, loads in the old range must pass through again.
    EXPECT_EQ(ov.overlay(7, 0x100, 8), 7ULL);
}

TEST(StoreOverlay, RandomInFlightSetsMatchNaiveModel)
{
    Random rng(99);
    for (unsigned trial = 0; trial < 300; ++trial) {
        PendingStoreOverlay ov;
        std::vector<PendingStore> ref;
        // Random in-flight store set, clustered so overlaps are common.
        const unsigned n = 1 + unsigned(rng.below(12));
        for (unsigned i = 0; i < n; ++i) {
            const Addr addr = 0x1000 + rng.below(64);
            const unsigned size = rng.chancePercent(50) ? 8 : 4;
            const std::uint64_t pre = rng.next();
            ov.push(addr, size, pre);
            ref.push_back({addr, size, pre});
        }
        // Probe loads around and inside the cluster.
        for (unsigned probe = 0; probe < 200; ++probe) {
            const Addr addr = 0xff0 + rng.below(0x90);
            const unsigned size = rng.chancePercent(50) ? 8 : 4;
            const std::uint64_t base = rng.next();
            ASSERT_EQ(ov.overlay(base, addr, size),
                      naiveOverlay(ref, base, addr, size))
                << "trial=" << trial << " addr=" << addr
                << " size=" << size;
        }
        // Drain a prefix (stores commit in order) and re-check.
        const unsigned drop = unsigned(rng.below(n + 1));
        for (unsigned i = 0; i < drop; ++i)
            ov.popFront();
        ref.erase(ref.begin(), ref.begin() + drop);
        for (unsigned probe = 0; probe < 50; ++probe) {
            const Addr addr = 0xff0 + rng.below(0x90);
            const std::uint64_t base = rng.next();
            ASSERT_EQ(ov.overlay(base, addr, 8),
                      naiveOverlay(ref, base, addr, 8));
        }
    }
}

// --- RingPool --------------------------------------------------------------

struct PoolItem
{
    int value = -1;
    bool live = false;

    void
    reset()
    {
        value = -1;
        live = false;
    }
};

TEST(RingPool, FifoOrderAcrossWraparound)
{
    RingPool<PoolItem> pool(4);
    EXPECT_TRUE(pool.empty());
    EXPECT_EQ(pool.capacity(), 4u);

    int next = 0;
    // Repeatedly push 3 / pop 2 so head wraps several times.
    for (unsigned round = 0; round < 10; ++round) {
        while (pool.size() < 3) {
            PoolItem &it = pool.emplaceBack();
            EXPECT_EQ(it.value, -1) << "slot not recycled";
            it.value = next++;
            it.live = true;
        }
        const int oldest = pool.front().value;
        EXPECT_EQ(pool[0].value, oldest);
        EXPECT_EQ(pool[pool.size() - 1].value, next - 1);
        pool.popFront();
        EXPECT_EQ(pool.front().value, oldest + 1);
        pool.popFront();
    }
}

TEST(RingPool, SlotAddressesStableWhileLive)
{
    RingPool<PoolItem> pool(8);
    std::vector<PoolItem *> ptrs;
    for (int i = 0; i < 8; ++i) {
        PoolItem &it = pool.emplaceBack();
        it.value = i;
        ptrs.push_back(&it);
    }
    EXPECT_TRUE(pool.full());
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(ptrs[size_t(i)]->value, i);
    // Popping the front keeps the remaining entries in place.
    pool.popFront();
    for (int i = 1; i < 8; ++i) {
        EXPECT_EQ(&pool[size_t(i - 1)], ptrs[size_t(i)]);
        EXPECT_EQ(pool[size_t(i - 1)].value, i);
    }
}

TEST(RingPool, PopBackDiscardsTentativeEntry)
{
    RingPool<PoolItem> pool(2);
    pool.emplaceBack().value = 1;
    pool.emplaceBack().value = 2;
    pool.popBack();
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.back().value, 1);
    // The discarded slot is recycled on the next claim.
    EXPECT_EQ(pool.emplaceBack().value, -1);
    pool.clear();
    EXPECT_TRUE(pool.empty());
}

// --- LSQ store-to-load forwarding -----------------------------------------

namespace lsqtest {

DynInst
makeMem(InstSeqNum seq, Opcode op, Addr addr, unsigned size,
        bool completed)
{
    DynInst d;
    d.seq = seq;
    d.rec.inst = Instruction(op, 1, 2, 3, 0);
    d.rec.isMem = true;
    d.rec.isStore = d.rec.inst.isStore();
    d.rec.addr = addr;
    d.rec.size = size;
    d.completed = completed;
    return d;
}

} // namespace lsqtest

TEST(LsqForwarding, LoadSpanningTwoAdjacentCompletedStoresForwards)
{
    using lsqtest::makeMem;
    LoadStoreQueue lsq(8);
    DynInst s1 = makeMem(1, Opcode::STQ, 0x1000, 8, true);
    DynInst s2 = makeMem(2, Opcode::STQ, 0x1008, 8, true);
    DynInst ld = makeMem(3, Opcode::LDQ, 0x1004, 8, false);
    lsq.insert(&s1);
    lsq.insert(&s2);
    lsq.insert(&ld);
    // Neither store covers the load alone; together they do. The old
    // nearest-store-only rule wrongly stalled this load.
    EXPECT_EQ(lsq.checkLoad(&ld), LoadCheck::Forward);
}

TEST(LsqForwarding, CombinedCoverageStallsWhileAnyNeededStoreIsPending)
{
    using lsqtest::makeMem;
    LoadStoreQueue lsq(8);
    DynInst s1 = makeMem(1, Opcode::STQ, 0x1000, 8, true);
    DynInst s2 = makeMem(2, Opcode::STQ, 0x1008, 8, false); // in flight
    DynInst ld = makeMem(3, Opcode::LDQ, 0x1004, 8, false);
    lsq.insert(&s1);
    lsq.insert(&s2);
    lsq.insert(&ld);
    EXPECT_EQ(lsq.checkLoad(&ld), LoadCheck::Stall);
    s2.completed = true;
    EXPECT_EQ(lsq.checkLoad(&ld), LoadCheck::Forward);
}

TEST(LsqForwarding, NearestStorePerByteDecides)
{
    using lsqtest::makeMem;
    LoadStoreQueue lsq(8);
    // The older store is incomplete, but every byte it would supply is
    // re-written by the younger completed store: the load only needs
    // the younger one.
    DynInst s1 = makeMem(1, Opcode::STQ, 0x2000, 8, false);
    DynInst s2 = makeMem(2, Opcode::STQ, 0x2000, 8, true);
    DynInst ld = makeMem(3, Opcode::LDQ, 0x2000, 8, false);
    lsq.insert(&s1);
    lsq.insert(&s2);
    lsq.insert(&ld);
    EXPECT_EQ(lsq.checkLoad(&ld), LoadCheck::Forward);

    // Conversely a younger *incomplete* store owning any needed byte
    // stalls the load even when an older completed store covers it.
    LoadStoreQueue lsq2(8);
    DynInst t1 = makeMem(1, Opcode::STQ, 0x3000, 8, true);
    DynInst t2 = makeMem(2, Opcode::STL, 0x3004, 4, false);
    DynInst ld2 = makeMem(3, Opcode::LDQ, 0x3000, 8, false);
    lsq2.insert(&t1);
    lsq2.insert(&t2);
    lsq2.insert(&ld2);
    EXPECT_EQ(lsq2.checkLoad(&ld2), LoadCheck::Stall);
}

TEST(LsqForwarding, PartialCoverageFromMemoryStalls)
{
    using lsqtest::makeMem;
    LoadStoreQueue lsq(8);
    // Half the load comes from a pending store, half from the cache: a
    // mixed source cannot forward and must wait for the store to drain.
    DynInst s1 = makeMem(1, Opcode::STL, 0x4000, 4, true);
    DynInst ld = makeMem(2, Opcode::LDQ, 0x4000, 8, false);
    lsq.insert(&s1);
    lsq.insert(&ld);
    EXPECT_EQ(lsq.checkLoad(&ld), LoadCheck::Stall);

    // Fully disjoint load: straight to the cache.
    DynInst ld2 = makeMem(3, Opcode::LDQ, 0x5000, 8, false);
    lsq.insert(&ld2);
    EXPECT_EQ(lsq.checkLoad(&ld2), LoadCheck::Ready);
}

// --- Histogram under/overflow ---------------------------------------------

TEST(HistogramFlow, NegativeSamplesLandInUnderflowNotOverflow)
{
    Histogram h(4);
    h.sample(-1);
    h.sample(-100, 2);
    h.sample(0);
    h.sample(3);
    h.sample(4);  // first out-of-range above
    h.sample(99, 3);
    EXPECT_EQ(h.underflow(), 3u);
    EXPECT_EQ(h.overflow(), 4u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.total(), 9u);
    EXPECT_DOUBLE_EQ(h.underflowFraction(), 3.0 / 9.0);
    EXPECT_DOUBLE_EQ(h.overflowFraction(), 4.0 / 9.0);
    EXPECT_NE(h.toString().find("unf 3"), std::string::npos);
    EXPECT_NE(h.toString().find("ovf 4"), std::string::npos);
}

TEST(HistogramFlow, MergeAndResetCarryUnderflow)
{
    Histogram a(4), b(4);
    a.sample(-5);
    a.sample(2);
    b.sample(-7, 2);
    b.sample(10);
    a.merge(b);
    EXPECT_EQ(a.underflow(), 3u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_EQ(a.bucket(2), 1u);
    EXPECT_EQ(a.total(), 5u);
    a.reset();
    EXPECT_EQ(a.underflow(), 0u);
    EXPECT_EQ(a.overflow(), 0u);
    EXPECT_EQ(a.total(), 0u);
}

// --- VecRegFile free list / wake events (PR 5) -----------------------------

TEST(VecRegFreeList, AllocatesLowestFreeIndexAndRecycles)
{
    VecRegFile vrf(8, 4);
    // Fresh file: ascending indices.
    std::vector<VecRegRef> refs;
    for (unsigned i = 0; i < 8; ++i) {
        refs.push_back(vrf.allocate(0));
        ASSERT_TRUE(refs.back().valid());
        EXPECT_EQ(refs.back().reg, VecRegId(i));
    }
    EXPECT_EQ(vrf.numFree(), 0u);
    // Exhausted with nothing reclaimable: allocation fails.
    EXPECT_FALSE(vrf.allocate(0).valid());
    EXPECT_EQ(vrf.allocFailures(), 1u);

    // Free 5 and 2 (kill + sweep); the next allocations take the
    // lowest free index first, with fresh generations.
    for (VecRegId id : {VecRegId(5), VecRegId(2)}) {
        vrf.kill(refs[id]);
        EXPECT_TRUE(vrf.isKilled(refs[id]));
    }
    EXPECT_TRUE(vrf.sweepPending());
    EXPECT_EQ(vrf.sweepReleases(0), 2u);
    EXPECT_FALSE(vrf.sweepPending());
    EXPECT_EQ(vrf.numFree(), 2u);

    const VecRegRef a = vrf.allocate(0);
    EXPECT_EQ(a.reg, VecRegId(2));
    EXPECT_NE(a.gen, refs[2].gen);
    EXPECT_FALSE(vrf.isLive(refs[2])); // stale ref stays stale
    EXPECT_TRUE(vrf.isLive(a));
    EXPECT_EQ(vrf.allocate(0).reg, VecRegId(5));
}

TEST(VecRegFreeList, LazyCond2ReclaimsUnderPressureOnly)
{
    VecRegFile vrf(2, 4);
    const VecRegRef a = vrf.allocate(/*mrbb=*/0x100);
    const VecRegRef b = vrf.allocate(/*mrbb=*/0x100);
    // a: all elements computed, none validated — condition-2 eligible
    // once its loop terminates (GMRBB moves on).
    for (unsigned e = 0; e < 4; ++e)
        vrf.setData(a, e, e);
    vrf.sweepReleases(0x100); // condition 1 does not apply: not freed
    EXPECT_TRUE(vrf.isLive(a));

    // Pressure with GMRBB still at the allocating loop: no reclaim.
    EXPECT_FALSE(vrf.allocate(0x100).valid());
    EXPECT_TRUE(vrf.isLive(a));

    // Pressure after the loop terminated: a is stolen, b (elements
    // not computed) is not.
    const VecRegRef c = vrf.allocate(0x200);
    ASSERT_TRUE(c.valid());
    EXPECT_EQ(c.reg, a.reg);
    EXPECT_FALSE(vrf.isLive(a));
    EXPECT_TRUE(vrf.isLive(b));
    EXPECT_EQ(vrf.fateStats().releasedCond2, 1u);
}

TEST(VecRegWakeEvents, FireOnlyForRegisteredWaiters)
{
    VecRegFile vrf(4, 4);
    const VecRegRef r = vrf.allocate(0);

    // No waiter: computing elements pushes no events.
    vrf.setData(r, 0, 11);
    EXPECT_FALSE(vrf.hasWakeEvents());

    // A waiter on element 1 wakes exactly once, on its R transition.
    vrf.noteWaiter(r, 1);
    EXPECT_FALSE(vrf.hasWakeEvents());
    vrf.setData(r, 1, 22);
    ASSERT_TRUE(vrf.hasWakeEvents());
    unsigned events = 0;
    vrf.drainWakeEvents([&](const VecWakeEvent &e) {
        ++events;
        EXPECT_EQ(e.ref, r);
        EXPECT_EQ(e.elem, 1u);
    });
    EXPECT_EQ(events, 1u);
    EXPECT_FALSE(vrf.hasWakeEvents());

    // Interest is consumed: a second write on the same element (e.g.
    // a re-computed value) stays silent until re-registered.
    vrf.setData(r, 1, 33);
    EXPECT_FALSE(vrf.hasWakeEvents());

    // Death wakes every registered waiter with an all-elements event.
    vrf.noteWaiter(r, 2);
    vrf.noteWaiter(r, 3);
    vrf.kill(r);
    ASSERT_TRUE(vrf.hasWakeEvents());
    events = 0;
    vrf.drainWakeEvents([&](const VecWakeEvent &e) {
        ++events;
        EXPECT_EQ(e.ref, r);
        EXPECT_EQ(e.elem, VecWakeEvent::allElems);
    });
    EXPECT_EQ(events, 1u);

    // A killed register with no waiters releases silently.
    vrf.sweepReleases(0);
    EXPECT_FALSE(vrf.hasWakeEvents());
    EXPECT_FALSE(vrf.isLive(r));
}

TEST(VecRegFateAttribution, LifetimesAndReleaseCauses)
{
    VecRegFile vrf(4, 4);
    vrf.setClock(100);
    const VecRegRef a = vrf.allocate(0);
    for (unsigned e = 0; e < 4; ++e) {
        vrf.setData(a, e, e);
        vrf.setValid(a, e);
        vrf.setFree(a, e);
    }
    vrf.setClock(140);
    EXPECT_EQ(vrf.sweepReleases(0), 1u); // condition 1
    const VecRegFateStats &f = vrf.fateStats();
    EXPECT_EQ(f.releasedCond1, 1u);
    EXPECT_EQ(f.lifetimeCycles, 40u);
    EXPECT_DOUBLE_EQ(f.avgLifetimeCycles(), 40.0);

    const VecRegRef b = vrf.allocate(0);
    vrf.kill(b);
    vrf.setClock(150);
    EXPECT_EQ(vrf.sweepReleases(0), 1u);
    EXPECT_EQ(vrf.fateStats().releasedKilled, 1u);

    vrf.allocate(0);
    vrf.releaseAll();
    EXPECT_EQ(vrf.fateStats().releasedBulk, 1u);
    EXPECT_EQ(vrf.fateStats().regsReleased, 3u);
}

// --- VRMT epoch invalidation (PR 5) ---------------------------------------

TEST(VrmtEpoch, InvalidateAllIsAnEpochBumpNotASweep)
{
    Vrmt vrmt(16, 2);
    VrmtEntry e;
    e.valid = true;
    for (Addr pc = 0x1000; pc < 0x1000 + 16 * 8; pc += 8) {
        e.pc = pc;
        vrmt.install(e);
    }
    EXPECT_EQ(vrmt.occupancy(), 16u);

    vrmt.invalidateAll();
    EXPECT_EQ(vrmt.occupancy(), 0u);
    EXPECT_EQ(vrmt.lookup(Addr(0x1000)), nullptr);
    EXPECT_EQ(vrmt.peek(Addr(0x1008)), nullptr);

    // Stale-epoch entries are recycled as free ways, and the same-pc
    // replace path stamps the current epoch (a replaced entry must not
    // read as stale).
    e.pc = 0x1000;
    e.offset = 3;
    vrmt.install(e);
    ASSERT_NE(vrmt.lookup(Addr(0x1000)), nullptr);
    e.offset = 4;
    vrmt.install(e); // replace in place
    ASSERT_NE(vrmt.lookup(Addr(0x1000)), nullptr);
    EXPECT_EQ(vrmt.lookup(Addr(0x1000))->offset, 4u);
    EXPECT_EQ(vrmt.occupancy(), 1u);

    // Repeated quiesces keep working (epochs are monotonic).
    vrmt.invalidateAll();
    EXPECT_EQ(vrmt.occupancy(), 0u);
    vrmt.install(e);
    EXPECT_EQ(vrmt.occupancy(), 1u);
}

} // namespace
} // namespace sdv
