/**
 * @file
 * Unit tests for the timing memory system: cache tag array, MSHR file,
 * hierarchy latencies and D-cache port arbitration / wide bus.
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"
#include "mem/port.hh"

namespace sdv {
namespace {

TEST(Cache, HitAfterFill)
{
    Cache c("t", 1024, 2, 32);
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x11f, false).hit);  // same 32B line
    EXPECT_FALSE(c.access(0x120, false).hit); // next line
}

TEST(Cache, GeometryDerivedFromSize)
{
    Cache c("t", 64 * 1024, 2, 32);
    EXPECT_EQ(c.numSets(), 1024u);
    EXPECT_EQ(c.assoc(), 2u);
    EXPECT_EQ(c.lineBytes(), 32u);
}

TEST(Cache, LruEviction)
{
    // 2 sets, 2 ways, 16B lines -> addresses mapping to set 0 are
    // multiples of 32.
    Cache c("t", 64, 2, 16);
    EXPECT_EQ(c.numSets(), 2u);
    c.access(0x000, false);
    c.access(0x020, false);
    EXPECT_TRUE(c.access(0x000, false).hit); // 0x000 is MRU now
    c.access(0x040, false);                  // evicts 0x020
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x020));
    EXPECT_TRUE(c.probe(0x040));
}

TEST(Cache, EvictionOrderFollowsUseRecency)
{
    // One set of 4 ways (64B cache, 16B lines): every fourth fill must
    // evict exactly the least recently used line, regardless of which
    // way it occupies. Pins the single-pass victim selection.
    Cache c("t", 64, 4, 16);
    ASSERT_EQ(c.numSets(), 1u);
    const Addr a = 0x000, b = 0x010, d = 0x020, e = 0x030;
    for (Addr x : {a, b, d, e})
        c.access(x, false);
    // Refresh a and d; recency (oldest first) is now b, e, a, d.
    EXPECT_TRUE(c.access(a, false).hit);
    EXPECT_TRUE(c.access(d, false).hit);

    c.access(0x040, false); // evicts b (way 1)
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(e));
    c.access(0x050, false); // evicts e (way 3)
    EXPECT_FALSE(c.probe(e));
    EXPECT_TRUE(c.probe(a));
    c.access(0x060, false); // evicts a (way 0)
    EXPECT_FALSE(c.probe(a));
    EXPECT_TRUE(c.probe(d));
    c.access(0x070, false); // evicts d (way 2)
    EXPECT_FALSE(c.probe(d));
    // The three most recent fills survive.
    EXPECT_TRUE(c.probe(0x040) && c.probe(0x050) && c.probe(0x060));
}

TEST(Cache, WritebackOnDirtyEviction)
{
    Cache c("t", 32, 1, 16); // direct mapped, 2 sets
    EXPECT_FALSE(c.access(0x00, true).hit); // write-allocate, dirty
    const auto res = c.access(0x20, false); // same set, evicts dirty
    EXPECT_FALSE(res.hit);
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(res.writebackAddr, 0x00u);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionHasNoWriteback)
{
    Cache c("t", 32, 1, 16);
    c.access(0x00, false);
    const auto res = c.access(0x20, false);
    EXPECT_FALSE(res.writeback);
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c("t", 1024, 2, 32);
    c.access(0x100, false);
    EXPECT_TRUE(c.probe(0x100));
    c.invalidate(0x100);
    EXPECT_FALSE(c.probe(0x100));
}

TEST(Cache, StatsAccumulate)
{
    Cache c("t", 1024, 2, 32);
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x40, true);
    EXPECT_EQ(c.stats().readAccesses, 2u);
    EXPECT_EQ(c.stats().readMisses, 1u);
    EXPECT_EQ(c.stats().writeAccesses, 1u);
    EXPECT_EQ(c.stats().writeMisses, 1u);
    EXPECT_DOUBLE_EQ(c.stats().missRatio(), 2.0 / 3.0);
}

/** Property sweep over cache geometries: filling N lines that map to
 *  one set keeps exactly `assoc` resident. */
class CacheAssocSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(CacheAssocSweep, SetHoldsExactlyAssocLines)
{
    const unsigned assoc = GetParam();
    const unsigned line = 32;
    const unsigned sets = 8;
    Cache c("t", std::uint64_t(sets) * assoc * line, assoc, line);
    ASSERT_EQ(c.numSets(), sets);
    // 2*assoc lines, all mapping to set 0.
    for (unsigned i = 0; i < 2 * assoc; ++i)
        c.access(Addr(i) * sets * line, false);
    unsigned resident = 0;
    for (unsigned i = 0; i < 2 * assoc; ++i)
        if (c.probe(Addr(i) * sets * line))
            ++resident;
    EXPECT_EQ(resident, assoc);
    // The survivors must be the most recently filled ones (LRU).
    for (unsigned i = assoc; i < 2 * assoc; ++i)
        EXPECT_TRUE(c.probe(Addr(i) * sets * line));
}

INSTANTIATE_TEST_SUITE_P(Sweep, CacheAssocSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(Mshr, AllocateAndLazyRetire)
{
    MshrFile m(2);
    Cycle done = 0;
    EXPECT_TRUE(m.allocate(0x100, 10, 0, done));
    EXPECT_EQ(done, 10u);
    EXPECT_TRUE(m.allocate(0x200, 12, 0, done));
    EXPECT_EQ(m.busyCount(5), 2u);
    // Full at cycle 5.
    EXPECT_FALSE(m.allocate(0x300, 15, 5, done));
    EXPECT_EQ(m.fullStalls(), 1u);
    // After both fills landed, space again.
    EXPECT_TRUE(m.allocate(0x300, 20, 13, done));
}

TEST(Mshr, MergesSameLine)
{
    MshrFile m(1);
    Cycle done = 0;
    EXPECT_TRUE(m.allocate(0x100, 10, 0, done));
    // Same line merges even though the file is full.
    EXPECT_TRUE(m.allocate(0x100, 30, 2, done));
    EXPECT_EQ(done, 10u); // earlier in-flight fill wins
    EXPECT_EQ(m.merges(), 1u);
    EXPECT_TRUE(m.outstanding(0x100, 5));
    EXPECT_FALSE(m.outstanding(0x100, 10));
}

TEST(Hierarchy, LoadLatencies)
{
    MemHierarchyConfig cfg;
    MemHierarchy mh(cfg);
    Cycle done = 0;

    // Cold: L1 miss + L2 miss -> 6 + 18.
    ASSERT_TRUE(mh.loadAccess(0x1000, 0, done));
    EXPECT_EQ(done, 24u);

    // While outstanding, a second access merges to the same completion.
    ASSERT_TRUE(mh.loadAccess(0x1008, 3, done));
    EXPECT_EQ(done, 24u);

    // After the fill: L1 hit, 1 cycle.
    ASSERT_TRUE(mh.loadAccess(0x1000, 30, done));
    EXPECT_EQ(done, 31u);

    // A different line that now hits in L2 (same L2 line? no - pick an
    // address that missed into L2 earlier): cold L2 -> 24 again.
    ASSERT_TRUE(mh.loadAccess(0x2000, 40, done));
    EXPECT_EQ(done, 64u);
}

TEST(Hierarchy, L2HitLatencyAfterL1Eviction)
{
    MemHierarchyConfig cfg;
    // Tiny L1 so we can evict deterministically; keep L2 big.
    cfg.l1dSize = 64; // 1 set x 2 ways x 32B
    cfg.l1dAssoc = 2;
    MemHierarchy mh(cfg);
    Cycle done = 0;
    ASSERT_TRUE(mh.loadAccess(0x1000, 0, done));   // cold: 24
    ASSERT_TRUE(mh.loadAccess(0x2000, 100, done)); // cold: 124
    ASSERT_TRUE(mh.loadAccess(0x3000, 200, done)); // evicts 0x1000
    // 0x1000 is still in L2: L1 miss, L2 hit -> 6 cycles.
    ASSERT_TRUE(mh.loadAccess(0x1000, 300, done));
    EXPECT_EQ(done, 306u);
}

TEST(Hierarchy, FetchLatency)
{
    MemHierarchyConfig cfg;
    MemHierarchy mh(cfg);
    EXPECT_EQ(mh.fetchAccess(0x10000, 0), 24u); // cold
    EXPECT_EQ(mh.fetchAccess(0x10000, 30), 31u); // hit
    EXPECT_EQ(mh.fetchAccess(0x10008, 40), 41u); // same 64B line
}

TEST(Ports, ScalarPortsServeOneWordEach)
{
    DCachePorts ports(2, false, 32);
    ports.beginCycle();
    EXPECT_TRUE(ports.requestLoadWord(0x100).ok);
    EXPECT_TRUE(ports.requestLoadWord(0x108).ok); // same line, new port
    EXPECT_FALSE(ports.requestLoadWord(0x110).ok); // out of ports
    ports.beginCycle();
    EXPECT_TRUE(ports.requestLoadWord(0x110).ok);
    EXPECT_EQ(ports.stats().readAccesses, 3u);
}

TEST(Ports, WidePortMergesSameLine)
{
    DCachePorts ports(1, true, 32);
    ports.beginCycle();
    auto g0 = ports.requestLoadWord(0x100);
    ASSERT_TRUE(g0.ok);
    EXPECT_TRUE(g0.newAccess);
    // Three more words on the same line ride along.
    for (Addr a : {0x108, 0x110, 0x118}) {
        auto g = ports.requestLoadWord(a);
        ASSERT_TRUE(g.ok);
        EXPECT_FALSE(g.newAccess);
        EXPECT_EQ(g.accessId, g0.accessId);
    }
    // Fifth word on the line exceeds the 4-loads-per-access limit and
    // there is no second port.
    EXPECT_FALSE(ports.requestLoadWord(0x104).ok);
    // A different line also fails: no port left.
    EXPECT_FALSE(ports.requestLoadWord(0x200).ok);
    EXPECT_EQ(ports.stats().busyPortCycles, 1u);
}

TEST(Ports, WideMergeDoesNotCrossCycles)
{
    DCachePorts ports(1, true, 32);
    ports.beginCycle();
    EXPECT_TRUE(ports.requestLoadWord(0x100).ok);
    ports.beginCycle();
    auto g = ports.requestLoadWord(0x108);
    ASSERT_TRUE(g.ok);
    EXPECT_TRUE(g.newAccess); // new cycle, new access
    EXPECT_EQ(ports.stats().readAccesses, 2u);
}

TEST(Ports, StoresConsumeWholePort)
{
    DCachePorts ports(1, true, 32);
    ports.beginCycle();
    EXPECT_TRUE(ports.requestStoreWord(0x100).ok);
    EXPECT_FALSE(ports.requestLoadWord(0x100).ok);
    EXPECT_EQ(ports.stats().writeAccesses, 1u);
}

TEST(Ports, OccupancyComputation)
{
    DCachePorts ports(2, false, 32);
    for (int c = 0; c < 10; ++c) {
        ports.beginCycle();
        if (c < 5)
            ports.requestLoadWord(Addr(c) * 64);
    }
    EXPECT_DOUBLE_EQ(ports.stats().occupancy(2), 5.0 / 20.0);
}

TEST(Ports, WideBusLedgerClassifiesUsefulWords)
{
    DCachePorts ports(2, true, 32);
    // Access 1: two demand words.
    ports.beginCycle();
    ports.requestLoadWord(0x100);
    ports.requestLoadWord(0x108);
    // Access 2: one demand + two speculative elements, one later used.
    ports.beginCycle();
    ports.requestLoadWord(0x200);
    ports.requestLoadWord(0x208, /*elem_load_id=*/1);
    ports.requestLoadWord(0x210, /*elem_load_id=*/2);
    ports.resolveElem(1, true);
    ports.resolveElem(2, false);
    // Access 3: purely speculative, never used.
    ports.beginCycle();
    ports.requestLoadWord(0x300, /*elem_load_id=*/3);
    // id 3 left unresolved -> counts as unused.

    const WideBusBreakdown b = ports.wideBusBreakdown();
    EXPECT_EQ(b.totalReads, 3u);
    EXPECT_EQ(b.usefulWords[2], 2u); // accesses 1 and 2
    EXPECT_EQ(b.usefulWords[0], 1u); // access 3
    EXPECT_DOUBLE_EQ(b.unusedFraction(), 1.0 / 3.0);
}

} // namespace
} // namespace sdv
