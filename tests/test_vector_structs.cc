/**
 * @file
 * Unit tests for the vectorization structures: Table of Loads, VRMT,
 * vector register file (V/R/U/F flags and both freeing conditions) and
 * the vector datapath.
 */

#include <gtest/gtest.h>

#include "vector/datapath.hh"
#include "vector/table_of_loads.hh"
#include "vector/vreg_file.hh"
#include "vector/vrmt.hh"

namespace sdv {
namespace {

// --- Table of Loads --------------------------------------------------------

TEST(TableOfLoads, SpawnsAfterTwoStrideRepeats)
{
    TableOfLoads tl;
    const Addr pc = 0x10000;
    EXPECT_FALSE(tl.observe(pc, 1000).spawn); // install
    EXPECT_FALSE(tl.observe(pc, 1008).spawn); // stride 8, conf 0
    EXPECT_FALSE(tl.observe(pc, 1016).spawn); // conf 1
    const TlObservation o = tl.observe(pc, 1024);
    EXPECT_TRUE(o.spawn); // conf 2
    EXPECT_EQ(o.stride, 8);
}

TEST(TableOfLoads, Stride0SpawnsOneObservationEarlier)
{
    // The install initializes the stride field to 0, so a stride-0
    // load's second instance already matches (Figure 4 semantics).
    TableOfLoads tl;
    const Addr pc = 0x10000;
    EXPECT_FALSE(tl.observe(pc, 500).spawn);
    EXPECT_FALSE(tl.observe(pc, 500).spawn); // conf 1
    EXPECT_TRUE(tl.observe(pc, 500).spawn);  // conf 2
}

TEST(TableOfLoads, StrideChangeResetsConfidence)
{
    TableOfLoads tl;
    const Addr pc = 0x20000;
    tl.observe(pc, 0);
    tl.observe(pc, 8);
    tl.observe(pc, 16);
    EXPECT_TRUE(tl.observe(pc, 24).spawn);
    EXPECT_FALSE(tl.observe(pc, 100).spawn); // broken: stride now 76
    EXPECT_FALSE(tl.observe(pc, 108).spawn); // stride 8 again, conf 0
    EXPECT_FALSE(tl.observe(pc, 116).spawn); // conf 1
    EXPECT_TRUE(tl.observe(pc, 124).spawn);  // conf 2
}

TEST(TableOfLoads, ResetConfidenceForcesRelearning)
{
    TableOfLoads tl;
    const Addr pc = 0x30000;
    tl.observe(pc, 0);
    tl.observe(pc, 8);
    tl.observe(pc, 16);
    EXPECT_TRUE(tl.observe(pc, 24).spawn);
    tl.resetConfidence(pc);
    EXPECT_FALSE(tl.observe(pc, 32).spawn); // conf 1
    EXPECT_TRUE(tl.observe(pc, 40).spawn);  // conf 2
}

TEST(TableOfLoads, SnapshotRestoreRoundTrip)
{
    TableOfLoads tl;
    const Addr pc = 0x40000;
    tl.observe(pc, 0);
    tl.observe(pc, 8);
    const TlSnapshot snap = tl.snapshot(pc);
    tl.observe(pc, 4000); // disturb
    tl.restore(pc, snap);
    // State back to conf 1, last addr 8: two more repeats spawn.
    EXPECT_FALSE(tl.observe(pc, 16).spawn);
    EXPECT_TRUE(tl.observe(pc, 24).spawn);
}

TEST(TableOfLoads, RestoreOfMissingEntryDropsIt)
{
    TableOfLoads tl;
    const Addr pc = 0x50000;
    const TlSnapshot empty = tl.snapshot(pc); // not present
    tl.observe(pc, 0);
    tl.restore(pc, empty);
    // The entry was dropped; the next observe re-installs.
    TlObservation o = tl.observe(pc, 8);
    EXPECT_FALSE(o.hit);
}

TEST(TableOfLoads, StorageMatchesPaper)
{
    TableOfLoads tl(512, 4);
    EXPECT_EQ(tl.storageBytes(), 49152u);
}

// --- VRMT ---------------------------------------------------------------------

VrmtEntry
entryFor(Addr pc, VecRegRef v)
{
    VrmtEntry e;
    e.valid = true;
    e.pc = pc;
    e.vreg = v;
    return e;
}

TEST(Vrmt, InstallLookupInvalidate)
{
    Vrmt vrmt;
    const VecRegRef v{3, 1};
    vrmt.install(entryFor(0x1000, v));
    ASSERT_NE(vrmt.lookup(0x1000), nullptr);
    EXPECT_TRUE(vrmt.lookup(0x1000)->vreg == v);
    EXPECT_EQ(vrmt.lookup(0x1008), nullptr);
    vrmt.invalidate(0x1000);
    EXPECT_EQ(vrmt.lookup(0x1000), nullptr);
}

TEST(Vrmt, InstallReplacesSamePc)
{
    Vrmt vrmt;
    vrmt.install(entryFor(0x1000, VecRegRef{1, 1}));
    vrmt.install(entryFor(0x1000, VecRegRef{2, 1}));
    ASSERT_NE(vrmt.lookup(0x1000), nullptr);
    EXPECT_EQ(vrmt.lookup(0x1000)->vreg.reg, 2);
    EXPECT_EQ(vrmt.occupancy(), 1u);
}

TEST(Vrmt, LruEvictionWithinSet)
{
    Vrmt vrmt(1, 2); // one set, two ways
    vrmt.install(entryFor(0x1000, VecRegRef{1, 1}));
    vrmt.install(entryFor(0x2000, VecRegRef{2, 1}));
    vrmt.lookup(0x1000);                            // 0x1000 is MRU
    vrmt.install(entryFor(0x3000, VecRegRef{3, 1})); // evicts 0x2000
    EXPECT_NE(vrmt.lookup(0x1000), nullptr);
    EXPECT_EQ(vrmt.lookup(0x2000), nullptr);
    EXPECT_NE(vrmt.lookup(0x3000), nullptr);
}

TEST(Vrmt, InvalidateByVregCollectsLoadPcs)
{
    // Every live incarnation is the destination of at most one entry
    // (allocate() hands out fresh incarnations), which is what lets
    // the reverse index answer invalidateByVreg in O(1).
    Vrmt vrmt;
    VrmtEntry load = entryFor(0x1000, VecRegRef{7, 1});
    load.isLoad = true;
    vrmt.install(load);
    vrmt.install(entryFor(0x2000, VecRegRef{8, 1}));
    vrmt.install(entryFor(0x3000, VecRegRef{9, 1}));

    std::vector<Addr> pcs;
    EXPECT_EQ(vrmt.invalidateByVreg(VecRegRef{7, 1}, &pcs), 1u);
    ASSERT_EQ(pcs.size(), 1u); // the load entry's pc
    EXPECT_EQ(pcs[0], 0x1000u);
    EXPECT_EQ(vrmt.lookup(0x1000), nullptr);
    // Repeat hits the now-stale binding: no match, no pc.
    EXPECT_EQ(vrmt.invalidateByVreg(VecRegRef{7, 1}, &pcs), 0u);
    EXPECT_EQ(pcs.size(), 1u);
    // Non-load entries invalidate without reporting a pc.
    EXPECT_EQ(vrmt.invalidateByVreg(VecRegRef{8, 1}, &pcs), 1u);
    EXPECT_EQ(pcs.size(), 1u);
    EXPECT_NE(vrmt.lookup(0x3000), nullptr);
}

TEST(Vrmt, InvalidateByVregReportsEagerSuccessor)
{
    Vrmt vrmt;
    VrmtEntry e = entryFor(0x1000, VecRegRef{7, 1});
    e.hasNext = true;
    e.nextVreg = VecRegRef{12, 3};
    vrmt.install(e);

    std::vector<VecRegRef> succ;
    EXPECT_EQ(vrmt.invalidateByVreg(VecRegRef{7, 1}, nullptr, &succ), 1u);
    ASSERT_EQ(succ.size(), 1u);
    EXPECT_TRUE(succ[0] == (VecRegRef{12, 3}));
}

TEST(Vrmt, ReverseIndexSurvivesReplacementAndRebind)
{
    Vrmt vrmt;
    vrmt.install(entryFor(0x1000, VecRegRef{7, 1}));
    // Replacing the same pc re-binds the index to the new register.
    vrmt.install(entryFor(0x1000, VecRegRef{7, 2}));
    EXPECT_EQ(vrmt.invalidateByVreg(VecRegRef{7, 1}), 0u);
    EXPECT_EQ(vrmt.invalidateByVreg(VecRegRef{7, 2}), 1u);

    // rebindVreg (eager-chain takeover) keeps the index in sync.
    VrmtEntry &live = vrmt.install(entryFor(0x2000, VecRegRef{5, 1}));
    vrmt.rebindVreg(live, VecRegRef{6, 4});
    EXPECT_EQ(vrmt.invalidateByVreg(VecRegRef{5, 1}), 0u);
    EXPECT_EQ(vrmt.invalidateByVreg(VecRegRef{6, 4}), 1u);
}

TEST(Vrmt, StorageMatchesPaper)
{
    Vrmt vrmt(64, 4);
    EXPECT_EQ(vrmt.storageBytes(), 4608u);
}

// --- vector register file ------------------------------------------------------

TEST(VecRegFile, AllocateReleaseCycle)
{
    VecRegFile vrf(4, 4);
    EXPECT_EQ(vrf.numFree(), 4u);
    const VecRegRef a = vrf.allocate(0);
    ASSERT_TRUE(a.valid());
    EXPECT_EQ(vrf.numFree(), 3u);
    EXPECT_TRUE(vrf.isLive(a));
}

TEST(VecRegFile, StaleReferenceDetectedAfterRealloc)
{
    VecRegFile vrf(1, 4);
    const VecRegRef a = vrf.allocate(0);
    // Condition 1: all elements computed and freed.
    for (unsigned e = 0; e < 4; ++e) {
        vrf.setData(a, e, e);
        vrf.setFree(a, e);
    }
    EXPECT_TRUE(vrf.tryRelease(a, 0));
    const VecRegRef b = vrf.allocate(0);
    ASSERT_TRUE(b.valid());
    EXPECT_EQ(a.reg, b.reg); // same physical register...
    EXPECT_FALSE(vrf.isLive(a)); // ...but the old incarnation is dead
    EXPECT_TRUE(vrf.isLive(b));
}

TEST(VecRegFile, Condition1RequiresAllReadyAndFree)
{
    VecRegFile vrf(2, 4);
    const VecRegRef a = vrf.allocate(0);
    for (unsigned e = 0; e < 4; ++e)
        vrf.setData(a, e, e);
    vrf.setFree(a, 0);
    vrf.setFree(a, 1);
    vrf.setFree(a, 2);
    EXPECT_FALSE(vrf.tryRelease(a, 0)); // element 3 not freed
    vrf.setFree(a, 3);
    EXPECT_TRUE(vrf.tryRelease(a, 0));
}

TEST(VecRegFile, Condition2OnlyUnderAllocationPressure)
{
    VecRegFile vrf(1, 4);
    const VecRegRef a = vrf.allocate(/*mrbb=*/0x100);
    for (unsigned e = 0; e < 4; ++e)
        vrf.setData(a, e, e); // all R, none validated, none freed
    // Eager sweep must NOT free it even though GMRBB changed
    // (transient inner-loop branches would otherwise kill outer-loop
    // registers).
    EXPECT_EQ(vrf.sweepReleases(/*gmrbb=*/0x200), 0u);
    EXPECT_TRUE(vrf.isLive(a));
    // Allocation pressure with a different GMRBB reclaims it.
    const VecRegRef b = vrf.allocate(/*mrbb=*/0x200);
    ASSERT_TRUE(b.valid());
    EXPECT_FALSE(vrf.isLive(a));
}

TEST(VecRegFile, Condition2BlockedWhileLoopAlive)
{
    VecRegFile vrf(1, 4);
    const VecRegRef a = vrf.allocate(0x100);
    for (unsigned e = 0; e < 4; ++e)
        vrf.setData(a, e, e);
    // Same GMRBB (loop still running): even under pressure no steal.
    const VecRegRef b = vrf.allocate(0x100);
    EXPECT_FALSE(b.valid());
    EXPECT_EQ(vrf.allocFailures(), 1u);
}

TEST(VecRegFile, Condition2BlockedByInFlightValidation)
{
    VecRegFile vrf(1, 4);
    const VecRegRef a = vrf.allocate(0x100);
    for (unsigned e = 0; e < 4; ++e)
        vrf.setData(a, e, e);
    vrf.setUsed(a, 1, true); // validation in flight
    EXPECT_FALSE(vrf.allocate(0x200).valid());
    vrf.setUsed(a, 1, false);
    EXPECT_TRUE(vrf.allocate(0x200).valid());
}

TEST(VecRegFile, ValidatedElementsMustBeFreedForCondition2)
{
    VecRegFile vrf(1, 4);
    const VecRegRef a = vrf.allocate(0x100);
    for (unsigned e = 0; e < 4; ++e)
        vrf.setData(a, e, e);
    vrf.setValid(a, 0); // committed validation, element still live
    EXPECT_FALSE(vrf.allocate(0x200).valid());
    vrf.setFree(a, 0); // consumer redefined the logical register
    EXPECT_TRUE(vrf.allocate(0x200).valid());
}

TEST(VecRegFile, KilledRegisterFreesOnceUnused)
{
    VecRegFile vrf(2, 4);
    const VecRegRef a = vrf.allocate(0);
    vrf.setUsed(a, 0, true);
    vrf.kill(a);
    EXPECT_EQ(vrf.sweepReleases(0), 0u); // validation still in flight
    vrf.setUsed(a, 0, false);
    EXPECT_EQ(vrf.sweepReleases(0), 1u);
    EXPECT_FALSE(vrf.isLive(a));
}

TEST(VecRegFile, RangeOverlapDetection)
{
    VecRegFile vrf(2, 4);
    const VecRegRef a = vrf.allocate(0);
    vrf.setAddrRange(a, 1000, 1024, 8); // covers bytes [1000, 1031]
    EXPECT_TRUE(vrf.rangeOverlaps(a, 1031, 1031));
    EXPECT_TRUE(vrf.rangeOverlaps(a, 996, 1003));
    EXPECT_FALSE(vrf.rangeOverlaps(a, 1032, 1039));
    EXPECT_FALSE(vrf.rangeOverlaps(a, 0, 999));
}

TEST(VecRegFile, NegativeStrideRangeNormalized)
{
    VecRegFile vrf(2, 4);
    const VecRegRef a = vrf.allocate(0);
    vrf.setAddrRange(a, 1024, 1000, 8); // descending stride
    EXPECT_TRUE(vrf.rangeOverlaps(a, 1000, 1000));
    EXPECT_TRUE(vrf.rangeOverlaps(a, 1031, 1031));
}

TEST(VecRegFile, FateLedgerCountsElementOutcomes)
{
    VecRegFile vrf(1, 4);
    const VecRegRef a = vrf.allocate(0x1);
    vrf.setData(a, 0, 1);
    vrf.setData(a, 1, 2);
    vrf.setData(a, 2, 3); // 3 computed
    vrf.setValid(a, 0);   // 1 validated
    vrf.releaseAll();
    const VecRegFateStats &f = vrf.fateStats();
    EXPECT_EQ(f.regsReleased, 1u);
    EXPECT_EQ(f.elemsComputedUsed, 1u);
    EXPECT_EQ(f.elemsComputedNotUsed, 2u);
    EXPECT_EQ(f.elemsNotComputed, 1u);
}

/** Property: element flags over all state transitions keep the fate
 *  partition exhaustive (used + notUsed + notComputed == vlen). */
class VecRegFateSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(VecRegFateSweep, FatePartitionIsExhaustive)
{
    const unsigned pattern = GetParam();
    VecRegFile vrf(1, 4);
    const VecRegRef a = vrf.allocate(0);
    for (unsigned e = 0; e < 4; ++e) {
        if (pattern & (1u << e))
            vrf.setData(a, e, e);
        if ((pattern & (1u << (e + 4))) && (pattern & (1u << e)))
            vrf.setValid(a, e);
    }
    vrf.releaseAll();
    const VecRegFateStats &f = vrf.fateStats();
    EXPECT_EQ(f.elemsComputedUsed + f.elemsComputedNotUsed +
                  f.elemsNotComputed,
              4u);
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, VecRegFateSweep,
                         ::testing::Range(0u, 256u));

// --- datapath ----------------------------------------------------------------

struct DatapathFixture : public ::testing::Test, public VecExecContext
{
    DatapathFixture()
        : vrf(8, 4), dp(VectorFuConfig{}, vrf), mem(MemHierarchyConfig{}),
          ports(4, true, 32)
    {
        dp.setContext(this);
    }

    std::uint64_t
    specLoadValue(Addr addr, unsigned) const override
    {
        return addr * 10;
    }

    bool
    seqCompleted(InstSeqNum) const override
    {
        return producer_done;
    }

    bool producer_done = false;

    void
    tickN(unsigned n, Cycle &now)
    {
        for (unsigned i = 0; i < n; ++i) {
            ports.beginCycle();
            dp.tick(now, ports, mem);
            ++now;
        }
    }

    VecRegFile vrf;
    VectorDatapath dp;
    MemHierarchy mem;
    DCachePorts ports;
};

TEST_F(DatapathFixture, LoadInstanceFillsElements)
{
    const VecRegRef v = vrf.allocate(0);
    vrf.setElemCount(v, 4);
    dp.spawnLoad(0x1000, v, /*base=*/800, /*stride=*/8, 8, 4);
    Cycle now = 0;
    tickN(40, now); // enough for a cold miss to land
    for (unsigned e = 0; e < 4; ++e) {
        ASSERT_TRUE(vrf.isReady(v, e));
        EXPECT_EQ(vrf.data(v, e), (800 + 8 * (e + 1)) * 10);
    }
    EXPECT_EQ(dp.numActive(), 0u);
}

TEST_F(DatapathFixture, ArithInstanceComputesFromSources)
{
    const VecRegRef src = vrf.allocate(0);
    vrf.setElemCount(src, 4);
    for (unsigned e = 0; e < 4; ++e)
        vrf.setData(src, e, 10 * e);
    const VecRegRef dst = vrf.allocate(0);
    vrf.setElemCount(dst, 4);
    dp.spawnArith(0x2000, Opcode::ADDI, /*imm=*/5, dst,
                  SrcSpec::vector(src, 0), SrcSpec::none(), 4);
    Cycle now = 0;
    tickN(10, now);
    for (unsigned e = 0; e < 4; ++e) {
        ASSERT_TRUE(vrf.isReady(dst, e));
        EXPECT_EQ(vrf.data(dst, e), 10 * e + 5);
    }
}

TEST_F(DatapathFixture, ScalarOperandBroadcasts)
{
    const VecRegRef src = vrf.allocate(0);
    for (unsigned e = 0; e < 4; ++e)
        vrf.setData(src, e, e);
    const VecRegRef dst = vrf.allocate(0);
    dp.spawnArith(0x3000, Opcode::ADD, 0, dst, SrcSpec::vector(src, 0),
                  SrcSpec::scalar(100), 4);
    Cycle now = 0;
    tickN(10, now);
    for (unsigned e = 0; e < 4; ++e)
        EXPECT_EQ(vrf.data(dst, e), 100 + e);
}

TEST_F(DatapathFixture, ScalarDependenceParksInstance)
{
    const VecRegRef src = vrf.allocate(0);
    for (unsigned e = 0; e < 4; ++e)
        vrf.setData(src, e, e);
    const VecRegRef dst = vrf.allocate(0);
    SrcSpec scalar = SrcSpec::scalar(7);
    scalar.depSeq = 42; // in-flight producer
    dp.spawnArith(0x4000, Opcode::ADD, 0, dst, SrcSpec::vector(src, 0),
                  scalar, 4);
    Cycle now = 0;
    tickN(10, now);
    EXPECT_FALSE(vrf.isReady(dst, 0)); // still parked
    producer_done = true;
    tickN(10, now);
    EXPECT_TRUE(vrf.isReady(dst, 3));
    EXPECT_EQ(vrf.data(dst, 0), 7u);
}

TEST_F(DatapathFixture, SourceOffsetShiftsElementPairing)
{
    const VecRegRef src = vrf.allocate(0);
    for (unsigned e = 0; e < 4; ++e)
        vrf.setData(src, e, 100 + e);
    const VecRegRef dst = vrf.allocate(0);
    vrf.setElemCount(dst, 3); // vlen - srcOffset
    dp.spawnArith(0x5000, Opcode::ADDI, 0, dst, SrcSpec::vector(src, 1),
                  SrcSpec::none(), 3);
    Cycle now = 0;
    tickN(10, now);
    EXPECT_EQ(vrf.data(dst, 0), 101u);
    EXPECT_EQ(vrf.data(dst, 2), 103u);
    EXPECT_EQ(dp.stats().instancesWithNonzeroSrcOffset, 1u);
}

TEST_F(DatapathFixture, AbortStopsRemainingElements)
{
    const VecRegRef v = vrf.allocate(0);
    dp.spawnLoad(0x6000, v, 800, 8, 8, 4);
    dp.abortByDest(v);
    Cycle now = 0;
    tickN(20, now);
    EXPECT_FALSE(vrf.isReady(v, 0));
    EXPECT_EQ(dp.numActive(), 0u);
}

TEST_F(DatapathFixture, DeadSourceCascadesKillToDest)
{
    const VecRegRef src = vrf.allocate(0);
    const VecRegRef dst = vrf.allocate(0);
    dp.spawnArith(0x7000, Opcode::ADDI, 1, dst, SrcSpec::vector(src, 0),
                  SrcSpec::none(), 4);
    vrf.kill(src); // e.g. store conflict on the producer
    Cycle now = 0;
    tickN(5, now);
    EXPECT_TRUE(vrf.isKilled(dst));
    EXPECT_EQ(dp.numActive(), 0u);
}

TEST_F(DatapathFixture, UniformSourceServesAnyElementFromElem0)
{
    const VecRegRef src = vrf.allocate(0);
    vrf.setUniform(src, true);
    vrf.setData(src, 0, 55); // only element 0 computed
    const VecRegRef dst = vrf.allocate(0);
    dp.spawnArith(0x8000, Opcode::ADDI, 1, dst, SrcSpec::vector(src, 2),
                  SrcSpec::none(), 4);
    Cycle now = 0;
    tickN(10, now);
    for (unsigned e = 0; e < 4; ++e)
        EXPECT_EQ(vrf.data(dst, e), 56u);
}

} // namespace
} // namespace sdv
