/**
 * @file
 * Tests of the sweep work-server: served record streams are
 * byte-identical to the in-process executor (concurrently, from many
 * clients), the snapshot cache single-flights concurrent captures,
 * crashed workers are respawned and their units retried without
 * perturbing results, malformed requests are rejected without taking
 * the daemon down, and the satellite pieces (atomic checkpoint save,
 * missing-vs-corrupt load verdicts, --jobs auto-detection).
 *
 * The daemon runs in-process (SweepServer on a background thread); the
 * worker pool is the real sdv_sweep binary (SDV_SWEEP_BIN, injected by
 * CMake), spawned as `--worker` exactly as in production.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "common/serialize.hh"
#include "sweep/checkpoint.hh"
#include "sweep/client.hh"
#include "sweep/executor.hh"
#include "sweep/plan.hh"
#include "sweep/proto.hh"
#include "sweep/server.hh"
#include "sweep/snapshot_cache.hh"

namespace sdv {
namespace {

/** One in-process daemon over a fresh temp directory. */
class ServerFixture
{
  public:
    explicit ServerFixture(unsigned workers)
    {
        char tmpl[] = "/tmp/sdvsrvXXXXXX";
        const char *dir = ::mkdtemp(tmpl);
        EXPECT_NE(dir, nullptr);
        dir_ = dir;
        sweep::SweepServer::Options opt;
        opt.socketPath = dir_ + "/sock";
        opt.cacheDir = dir_ + "/cache";
        opt.workerExe = SDV_SWEEP_BIN;
        opt.workers = workers;
        server_ = std::make_unique<sweep::SweepServer>(opt);
        std::string err;
        started_ = server_->start(&err);
        EXPECT_TRUE(started_) << err;
        if (started_)
            thread_ = std::thread([this] { server_->run(); });
    }

    ~ServerFixture()
    {
        if (started_) {
            server_->stop();
            thread_.join();
        }
        const std::string cmd = "rm -rf " + dir_;
        [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }

    std::string socketPath() const { return dir_ + "/sock"; }

  private:
    std::string dir_;
    std::unique_ptr<sweep::SweepServer> server_;
    std::thread thread_;
    bool started_ = false;
};

/** The reference: what the in-process executor serializes for @p req
 *  (the serial path every served stream must match byte for byte). */
std::string
serialResults(const sweep::proto::SweepRequest &req)
{
    const sweep::SweepPlan plan = sweep::buildPlan(req.plan, req.popt);
    sweep::ExecOptions eopt = req.eopt;
    eopt.jobs = 1;
    return sweep::resultsJson(sweep::runPlan(plan, eopt, nullptr));
}

/** A small sampled fig11 request (sampling keeps per-unit work tiny;
 *  the grid still exercises multi-workload capture + collation). */
sweep::proto::SweepRequest
sampledRequest()
{
    sweep::proto::SweepRequest req;
    req.plan = "fig11";
    req.popt.quick = true;
    req.eopt.sample.samples = 3;
    req.eopt.sample.measureInsts = 2'000;
    req.eopt.warmupInsts = 5'000;
    return req;
}

/** Extract `"key": <number>` from a metrics JSON string. */
long long
metricsField(const std::string &json, const std::string &key)
{
    const std::string needle = "\"" + key + "\": ";
    const std::size_t pos = json.find(needle);
    if (pos == std::string::npos)
        return -1;
    return std::atoll(json.c_str() + pos + needle.size());
}

TEST(SweepServer, ServedStreamMatchesSerialByteForByte)
{
    ServerFixture srv(2);
    const sweep::proto::SweepRequest req = sampledRequest();

    sweep::ClientResult res;
    std::string err;
    ASSERT_TRUE(sweep::submitSweep(srv.socketPath(), req, res, &err))
        << err;
    EXPECT_EQ(serialResults(req), res.resultsArray());

    // Checkpoint mode takes the one-boundary cache path.
    sweep::proto::SweepRequest ck = req;
    ck.eopt.sample = sweep::SamplePlan{};
    ck.eopt.checkpoint = true;
    ck.eopt.warmupInsts = 5'000;
    sweep::ClientResult res2;
    ASSERT_TRUE(sweep::submitSweep(srv.socketPath(), ck, res2, &err))
        << err;
    EXPECT_EQ(serialResults(ck), res2.resultsArray());
}

TEST(SweepServer, ConcurrentClientsAreDeterministicAndShareCaptures)
{
    ServerFixture srv(2);
    const sweep::proto::SweepRequest req = sampledRequest();
    const std::string expect = serialResults(req);

    constexpr int kClients = 3;
    std::vector<sweep::ClientResult> results(kClients);
    std::vector<std::string> errs(kClients);
    std::vector<char> ok(kClients, 0);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c)
        clients.emplace_back([&, c] {
            ok[c] = sweep::submitSweep(srv.socketPath(), req,
                                       results[c], &errs[c]);
        });
    for (auto &t : clients)
        t.join();

    const sweep::SweepPlan plan = sweep::buildPlan(req.plan, req.popt);
    std::size_t workloads = 0;
    {
        std::string last;
        for (const sweep::SweepJob &j : plan.jobs)
            if (j.workload != last) {
                ++workloads;
                last = j.workload;
            }
    }

    std::uint64_t hits = 0, misses = 0, waits = 0;
    for (int c = 0; c < kClients; ++c) {
        ASSERT_TRUE(ok[c]) << errs[c];
        EXPECT_EQ(expect, results[c].resultsArray()) << "client " << c;
        hits += results[c].cacheHits;
        misses += results[c].cacheMisses;
        const long long w =
            metricsField(results[c].metricsJson, "cache_waits");
        ASSERT_GE(w, 0) << results[c].metricsJson;
        waits += std::uint64_t(w);
    }
    // Single-flight: every workload's capture pass ran exactly once
    // across all three clients; everyone else hit or waited.
    EXPECT_EQ(misses, workloads);
    EXPECT_EQ(hits + waits, (kClients - 1) * workloads);
}

TEST(SweepServer, WorkerCrashesAreRetriedWithoutChangingResults)
{
    ServerFixture srv(2);
    sweep::proto::SweepRequest req = sampledRequest();
    req.chaos.exitUnits = 2; // first two units each kill their worker

    sweep::ClientResult res;
    std::string err;
    ASSERT_TRUE(sweep::submitSweep(srv.socketPath(), req, res, &err))
        << err;
    EXPECT_EQ(serialResults(req), res.resultsArray());
    EXPECT_GE(metricsField(res.metricsJson, "unit_retries"), 2);
    EXPECT_GE(metricsField(res.metricsJson, "worker_restarts"), 2);
}

TEST(SweepServer, MalformedRequestsAreRejectedWithoutKillingDaemon)
{
    ServerFixture srv(1);
    std::string err;

    // Unknown plan.
    sweep::proto::SweepRequest bad = sampledRequest();
    bad.plan = "no_such_plan";
    sweep::ClientResult res;
    EXPECT_FALSE(sweep::submitSweep(srv.socketPath(), bad, res, &err));
    EXPECT_NE(err.find("unknown plan"), std::string::npos) << err;

    // Sampling + verify (the in-process path asserts; the daemon must
    // reject instead).
    sweep::proto::SweepRequest conflict = sampledRequest();
    conflict.eopt.verify = true;
    EXPECT_FALSE(
        sweep::submitSweep(srv.socketPath(), conflict, res, &err));
    EXPECT_NE(err.find("--verify"), std::string::npos) << err;

    // A garbage frame (unsealed payload) on a fresh connection.
    {
        const int fd =
            sweep::proto::connectUnix(srv.socketPath(), &err);
        ASSERT_GE(fd, 0) << err;
        sweep::proto::Framed link(fd);
        std::vector<std::uint8_t> junk = {0xde, 0xad, 0xbe, 0xef};
        link.send(sweep::proto::MsgType::Submit, junk);
    }

    // The daemon survived all of it and still serves.
    const sweep::proto::SweepRequest good = sampledRequest();
    ASSERT_TRUE(sweep::submitSweep(srv.socketPath(), good, res, &err))
        << err;
    EXPECT_EQ(serialResults(good), res.resultsArray());
}

TEST(SweepCheckpoint, LoadDistinguishesMissingFromCorrupt)
{
    char tmpl[] = "/tmp/sdvckXXXXXX";
    const char *dir = ::mkdtemp(tmpl);
    ASSERT_NE(dir, nullptr);
    const std::string missing = std::string(dir) + "/absent.ckpt";
    const std::string corrupt = std::string(dir) + "/corrupt.ckpt";

    std::vector<std::uint8_t> bytes;
    EXPECT_EQ(sweep::Checkpoint::LoadStatus::Missing,
              sweep::Checkpoint::load(missing, bytes));

    std::FILE *f = std::fopen(corrupt.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a checkpoint", f);
    std::fclose(f);
    EXPECT_EQ(sweep::Checkpoint::LoadStatus::Corrupt,
              sweep::Checkpoint::load(corrupt, bytes));

    // Round-trip through the atomic save path: the payload comes back
    // verbatim and no temp file is left beside it.
    const std::string saved = std::string(dir) + "/saved.ckpt";
    std::vector<std::uint8_t> payload;
    {
        Serializer ser;
        ser.str("atomic-save probe");
        payload = ser.finish();
    }
    ASSERT_TRUE(sweep::Checkpoint::save(saved, payload));
    std::vector<std::uint8_t> loaded;
    EXPECT_EQ(sweep::Checkpoint::LoadStatus::Ok,
              sweep::Checkpoint::load(saved, loaded));
    EXPECT_EQ(payload, loaded);
    const std::string lscmd =
        "ls " + std::string(dir) + " | grep -c tmp";
    std::FILE *ls = ::popen(lscmd.c_str(), "r");
    ASSERT_NE(ls, nullptr);
    char buf[16] = {0};
    ASSERT_NE(std::fgets(buf, sizeof(buf), ls), nullptr);
    ::pclose(ls);
    EXPECT_EQ(0, std::atoi(buf)); // no *.tmp.* litter
    const std::string cleanup = "rm -rf " + std::string(dir);
    [[maybe_unused]] const int rc = std::system(cleanup.c_str());
}

TEST(SweepExecutor, ResolveJobsAutoDetects)
{
    EXPECT_EQ(5u, sweep::resolveJobs(5));
    EXPECT_EQ(1u, sweep::resolveJobs(1));
    const unsigned resolved = sweep::resolveJobs(0);
    EXPECT_GE(resolved, 1u);
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw > 1)
        EXPECT_EQ(hw - 1, resolved);
}

TEST(SnapshotCacheUnit, SingleFlightDedupesConcurrentAcquires)
{
    char tmpl[] = "/tmp/sdvsfXXXXXX";
    const char *dir = ::mkdtemp(tmpl);
    ASSERT_NE(dir, nullptr);
    sweep::SnapshotCache cache(dir);

    std::atomic<int> captures{0};
    auto capture = [&](const std::string &path, std::string *) {
        ++captures;
        // Simulate a slow warm-up so every other thread piles up on
        // the in-flight entry.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        sweep::SnapshotSet s;
        s.captured = false; // negative result is cacheable too
        s.set.samples.resize(1);
        return sweep::saveSnapshotSet(path, s);
    };

    constexpr int kThreads = 8;
    std::atomic<int> okCount{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i)
        threads.emplace_back([&] {
            std::string err;
            if (cache.acquire("one-key", capture, &err))
                ++okCount;
        });
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(1, captures.load());
    EXPECT_EQ(kThreads, okCount.load());
    const auto stats = cache.stats();
    EXPECT_EQ(1u, stats.misses);
    EXPECT_EQ(stats.hits + stats.waits, unsigned(kThreads - 1));
    const std::string cleanup = "rm -rf " + std::string(dir);
    [[maybe_unused]] const int rc = std::system(cleanup.c_str());
}

} // namespace
} // namespace sdv
