/**
 * @file
 * Unit tests for the mini-ISA: opcode table, encode/decode round trips,
 * disassembly, and register naming.
 */

#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "isa/opcodes.hh"

namespace sdv {
namespace {

TEST(Opcodes, TableIsConsistent)
{
    for (unsigned i = 0; i < numOpcodes; ++i) {
        const auto op = static_cast<Opcode>(i);
        const OpInfo &info = opInfo(op);
        EXPECT_FALSE(info.mnemonic.empty());
        // Memory size implies a memory class.
        if (info.memBytes != 0) {
            EXPECT_TRUE(info.opClass == OpClass::MemRead ||
                        info.opClass == OpClass::MemWrite);
        }
        // Stores and branches never write a destination register.
        if (info.opClass == OpClass::MemWrite)
            EXPECT_FALSE(info.writesRd);
        if (info.isCondBranch)
            EXPECT_FALSE(info.writesRd);
        // Branches and jumps are mutually exclusive flags.
        EXPECT_FALSE(info.isCondBranch && info.isJump);
        // Only loads and arithmetic may be vectorizable.
        if (info.vectorizable) {
            EXPECT_NE(info.opClass, OpClass::MemWrite);
            EXPECT_NE(info.opClass, OpClass::Control);
            EXPECT_NE(info.opClass, OpClass::None);
        }
    }
}

TEST(Opcodes, MnemonicRoundTrip)
{
    for (unsigned i = 0; i < numOpcodes; ++i) {
        const auto op = static_cast<Opcode>(i);
        Opcode parsed;
        ASSERT_TRUE(parseMnemonic(std::string(mnemonic(op)), parsed))
            << mnemonic(op);
        EXPECT_EQ(parsed, op);
    }
}

TEST(Opcodes, MnemonicParseIsCaseInsensitive)
{
    Opcode op;
    ASSERT_TRUE(parseMnemonic("add", op));
    EXPECT_EQ(op, Opcode::ADD);
    ASSERT_TRUE(parseMnemonic("LdQ", op));
    EXPECT_EQ(op, Opcode::LDQ);
    EXPECT_FALSE(parseMnemonic("bogus", op));
}

TEST(Opcodes, LatenciesMatchTable1)
{
    EXPECT_EQ(opClassLatency(OpClass::IntAlu), 1u);
    EXPECT_EQ(opClassLatency(OpClass::IntMult), 2u);
    EXPECT_EQ(opClassLatency(OpClass::IntDiv), 12u);
    EXPECT_EQ(opClassLatency(OpClass::FpAdd), 2u);
    EXPECT_EQ(opClassLatency(OpClass::FpMult), 4u);
    EXPECT_EQ(opClassLatency(OpClass::FpDiv), 14u);
}

TEST(Instruction, EncodeDecodeRoundTrip)
{
    for (unsigned i = 0; i < numOpcodes; ++i) {
        Instruction in(static_cast<Opcode>(i), 7, 13, 63, -123456);
        Instruction out;
        ASSERT_TRUE(Instruction::decode(in.encode(), out));
        EXPECT_EQ(in, out);
    }
}

TEST(Instruction, DecodeRejectsBadOpcode)
{
    Instruction out;
    EXPECT_FALSE(Instruction::decode(0xff, out));
    EXPECT_FALSE(Instruction::decode(std::uint64_t(numOpcodes), out));
}

TEST(Instruction, ImmediateSignPreserved)
{
    Instruction in(Opcode::ADDI, 1, 2, 0, -1);
    Instruction out;
    ASSERT_TRUE(Instruction::decode(in.encode(), out));
    EXPECT_EQ(out.imm, -1);

    in.imm = std::numeric_limits<std::int32_t>::min();
    ASSERT_TRUE(Instruction::decode(in.encode(), out));
    EXPECT_EQ(out.imm, std::numeric_limits<std::int32_t>::min());
}

TEST(Instruction, Predicates)
{
    EXPECT_TRUE(Instruction(Opcode::LDQ, 1, 2, 0, 0).isLoad());
    EXPECT_TRUE(Instruction(Opcode::FLD, 33, 2, 0, 0).isLoad());
    EXPECT_TRUE(Instruction(Opcode::STQ, 0, 2, 1, 0).isStore());
    EXPECT_TRUE(Instruction(Opcode::BEQZ, 0, 1, 0, 4).isCondBranch());
    EXPECT_TRUE(Instruction(Opcode::JR, 0, 31, 0, 0).isJump());
    EXPECT_TRUE(Instruction(Opcode::HALT, 0, 0, 0, 0).isHalt());
    EXPECT_EQ(Instruction(Opcode::LDL, 1, 2, 0, 0).memBytes(), 4u);
    EXPECT_EQ(Instruction(Opcode::LDQ, 1, 2, 0, 0).memBytes(), 8u);
    // Writes to r0 are architecturally invisible.
    EXPECT_FALSE(Instruction(Opcode::ADD, 0, 1, 2, 0).writesReg());
    EXPECT_TRUE(Instruction(Opcode::ADD, 3, 1, 2, 0).writesReg());
}

TEST(Instruction, Disassembly)
{
    EXPECT_EQ(Instruction(Opcode::ADD, 3, 1, 2, 0).disasm(),
              "add r3, r1, r2");
    EXPECT_EQ(Instruction(Opcode::LDQ, 4, 2, 0, 16).disasm(),
              "ldq r4, 16(r2)");
    EXPECT_EQ(Instruction(Opcode::STQ, 0, 6, 5, -8).disasm(),
              "stq r5, -8(r6)");
    EXPECT_EQ(Instruction(Opcode::FADD, 34, 33, 32, 0).disasm(),
              "fadd f2, f1, f0");
    EXPECT_EQ(Instruction(Opcode::BEQZ, 0, 1, 0, -3).disasm(),
              "beqz r1, -3");
    EXPECT_EQ(Instruction(Opcode::HALT, 0, 0, 0, 0).disasm(), "halt");
}

TEST(RegNames, RoundTrip)
{
    for (unsigned r = 0; r < numLogicalRegs; ++r) {
        RegId out;
        ASSERT_TRUE(parseRegName(regName(RegId(r)), out));
        EXPECT_EQ(out, RegId(r));
    }
    RegId out;
    EXPECT_FALSE(parseRegName("r32", out));
    EXPECT_FALSE(parseRegName("f32", out));
    EXPECT_FALSE(parseRegName("x1", out));
    EXPECT_FALSE(parseRegName("r", out));
    EXPECT_FALSE(parseRegName("r1x", out));
}

} // namespace
} // namespace sdv
