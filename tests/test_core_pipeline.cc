/**
 * @file
 * Integration tests of the out-of-order pipeline and the dynamic
 * vectorization engine on small handwritten programs: every run must
 * commit exactly the functional instruction stream and reproduce the
 * functional final state, with and without vectorization, across
 * machine shapes.
 */

#include <deque>

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "sim/simulator.hh"

namespace sdv {
namespace {

std::deque<Program> &
keeper()
{
    static std::deque<Program> progs;
    return progs;
}

const Program &
keep(Program &&p)
{
    keeper().push_back(std::move(p));
    return keeper().back();
}

/** sum over a[0..n): classic stride-1 vectorizable loop. */
const Program &
sumLoop(unsigned n)
{
    ProgramBuilder b;
    const Addr arr = b.allocWords("arr", n);
    for (unsigned i = 0; i < n; ++i)
        b.pokeWord(arr + 8 * i, i + 1);
    b.loadAddr(10, arr);
    b.ldi(11, std::int32_t(n));
    b.ldi(20, 0);
    auto loop = b.here();
    b.ldq(1, 10, 0);
    b.add(20, 20, 1);
    b.addi(10, 10, 8);
    b.addi(11, 11, -1);
    b.bnez(11, loop);
    b.halt();
    return keep(b.finish());
}

TEST(Pipeline, SumLoopScalarBaseline)
{
    const Program &prog = sumLoop(64);
    const SimResult res =
        simulate(makeConfig(4, 1, BusMode::ScalarBus), prog);
    ASSERT_TRUE(res.finished);
    EXPECT_TRUE(res.verified);
    EXPECT_GT(res.ipc, 0.5);
    EXPECT_EQ(res.core.committedValidations, 0u);
}

TEST(Pipeline, SumLoopWideBus)
{
    const Program &prog = sumLoop(64);
    const SimResult res =
        simulate(makeConfig(4, 1, BusMode::WideBus), prog);
    ASSERT_TRUE(res.finished);
    EXPECT_TRUE(res.verified);
}

TEST(Pipeline, SumLoopVectorized)
{
    const Program &prog = sumLoop(256);
    const SimResult res =
        simulate(makeConfig(4, 1, BusMode::WideBusSdv), prog);
    ASSERT_TRUE(res.finished);
    EXPECT_TRUE(res.verified);
    // The strided load must be detected and validations must flow.
    EXPECT_GT(res.engine.loadSpawns + res.engine.loadChainSpawns, 10u);
    EXPECT_GT(res.core.committedValidations, 100u);
    // The self-check must never observe a wrong validated value.
    EXPECT_EQ(res.engine.validationValueMismatches, 0u);
}

TEST(Pipeline, VectorizationReducesMemoryRequests)
{
    const Program &prog = sumLoop(512);
    const SimResult wide =
        simulate(makeConfig(4, 1, BusMode::WideBus), prog);
    const SimResult sdv =
        simulate(makeConfig(4, 1, BusMode::WideBusSdv), prog);
    ASSERT_TRUE(wide.finished && sdv.finished);
    EXPECT_TRUE(wide.verified && sdv.verified);
    // A stride-1 loop serves 4 elements per wide access.
    EXPECT_LT(sdv.memoryRequests(), wide.memoryRequests());
}

const Program &arithChainLoop(unsigned n);

TEST(Pipeline, VectorizationSpeedsUpStreamingCode)
{
    // Streaming (independent-element) code gains from vectorization; a
    // serial reduction would not, so use the arithmetic-chain loop.
    const Program &prog = arithChainLoop(512);
    const SimResult base =
        simulate(makeConfig(4, 1, BusMode::ScalarBus), prog);
    const SimResult sdv =
        simulate(makeConfig(4, 1, BusMode::WideBusSdv), prog);
    ASSERT_TRUE(base.finished && sdv.finished);
    EXPECT_LT(sdv.cycles, base.cycles);
}

/** Pointer-style stride-0 reloads: the "same address" pattern. */
const Program &
stride0Loop(unsigned n)
{
    ProgramBuilder b;
    const Addr glob = b.allocWords("glob", 1);
    b.pokeWord(glob, 7);
    b.loadAddr(10, glob);
    b.ldi(11, std::int32_t(n));
    b.ldi(20, 0);
    auto loop = b.here();
    b.ldq(1, 10, 0); // stride-0 load
    b.add(20, 20, 1);
    b.addi(11, 11, -1);
    b.bnez(11, loop);
    b.halt();
    return keep(b.finish());
}

TEST(Pipeline, Stride0LoadsVectorize)
{
    const Program &prog = stride0Loop(200);
    const SimResult res =
        simulate(makeConfig(4, 1, BusMode::WideBusSdv), prog);
    ASSERT_TRUE(res.finished);
    EXPECT_TRUE(res.verified);
    EXPECT_GT(res.core.committedValidations, 100u);
    EXPECT_EQ(res.engine.validationValueMismatches, 0u);
}

/** Read-modify-write with a forward store that invalidates vectors. */
const Program &
storeConflictLoop(unsigned n)
{
    ProgramBuilder b;
    const Addr arr = b.allocWords("arr", n + 8);
    b.loadAddr(10, arr);
    b.ldi(11, std::int32_t(n));
    auto loop = b.here();
    b.ldq(1, 10, 8);   // load a[i+1] (gets vectorized)
    b.addi(1, 1, 3);
    b.stq(1, 10, 8);   // store a[i+1]: inside the vector's range
    b.addi(10, 10, 8);
    b.addi(11, 11, -1);
    b.bnez(11, loop);
    b.halt();
    return keep(b.finish());
}

TEST(Pipeline, StoreRangeConflictSquashesAndStaysCorrect)
{
    const Program &prog = storeConflictLoop(64);
    const SimResult res =
        simulate(makeConfig(4, 1, BusMode::WideBusSdv), prog);
    ASSERT_TRUE(res.finished);
    EXPECT_TRUE(res.verified);
    EXPECT_GT(res.engine.storeRangeConflicts, 0u);
    EXPECT_GT(res.core.storeConflictSquashes, 0u);
}

/** Arithmetic chain: load -> add -> mul, all vectorizable. */
const Program &
arithChainLoop(unsigned n)
{
    ProgramBuilder b;
    const Addr arr = b.allocWords("arr", n);
    const Addr out = b.allocWords("out", n);
    for (unsigned i = 0; i < n; ++i)
        b.pokeWord(arr + 8 * i, 2 * i + 1);
    b.loadAddr(10, arr);
    b.loadAddr(12, out);
    b.ldi(11, std::int32_t(n));
    b.ldi(13, 3); // loop-invariant scalar operand
    auto loop = b.here();
    b.ldq(1, 10, 0);
    b.add(2, 1, 13);  // vector + scalar (mixed operands)
    b.mul(3, 2, 2);   // vector * vector
    b.stq(3, 12, 0);
    b.addi(10, 10, 8);
    b.addi(12, 12, 8);
    b.addi(11, 11, -1);
    b.bnez(11, loop);
    b.halt();
    return keep(b.finish());
}

TEST(Pipeline, ArithmeticVectorizationPropagates)
{
    const Program &prog = arithChainLoop(256);
    const SimResult res =
        simulate(makeConfig(4, 1, BusMode::WideBusSdv), prog);
    ASSERT_TRUE(res.finished);
    EXPECT_TRUE(res.verified);
    EXPECT_GT(res.engine.arithSpawns + res.engine.arithChainSpawns, 10u);
    EXPECT_GT(res.engine.arithValidations, 100u);
    EXPECT_GT(res.engine.mixedScalarSpawns, 0u);
    EXPECT_EQ(res.engine.validationValueMismatches, 0u);
}

/** Branchy loop with a data-dependent (mispredictable) branch. */
const Program &
branchyLoop(unsigned n)
{
    ProgramBuilder b;
    const Addr arr = b.allocWords("arr", n);
    // Pseudo-random 0/1 pattern (fixed seed).
    std::uint64_t x = 0x123456789ull;
    for (unsigned i = 0; i < n; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        b.pokeWord(arr + 8 * i, (x >> 33) & 1);
    }
    b.loadAddr(10, arr);
    b.ldi(11, std::int32_t(n));
    b.ldi(20, 0);
    b.ldi(21, 0);
    auto loop = b.newLabel();
    auto skip = b.newLabel();
    b.bind(loop);
    b.ldq(1, 10, 0);
    b.beqz(1, skip);
    b.addi(20, 20, 5); // taken path work
    b.bind(skip);
    b.addi(21, 21, 1);
    b.addi(10, 10, 8);
    b.addi(11, 11, -1);
    b.bnez(11, loop);
    b.halt();
    return keep(b.finish());
}

TEST(Pipeline, MispredictsRecoverCorrectly)
{
    const Program &prog = branchyLoop(300);
    const SimResult res =
        simulate(makeConfig(4, 1, BusMode::WideBusSdv), prog);
    ASSERT_TRUE(res.finished);
    EXPECT_TRUE(res.verified);
    EXPECT_GT(res.core.branchMispredicts, 20u);
    // Control independence: some post-mispredict instructions reuse
    // vector data.
    EXPECT_GT(res.core.postMispredictWindowInsts, 0u);
}

/** Calls and returns exercise the RAS. */
const Program &
callLoop(unsigned n)
{
    ProgramBuilder b;
    auto func = b.newLabel();
    auto start = b.newLabel();
    b.br(start);
    b.bind(func);
    b.addi(20, 20, 7);
    b.jr(31);
    b.bind(start);
    b.ldi(11, std::int32_t(n));
    b.ldi(20, 0);
    auto loop = b.here();
    b.jal(func);
    b.addi(11, 11, -1);
    b.bnez(11, loop);
    b.halt();
    return keep(b.finish());
}

TEST(Pipeline, CallsAndReturnsPredictViaRas)
{
    const Program &prog = callLoop(100);
    const SimResult res =
        simulate(makeConfig(4, 1, BusMode::ScalarBus), prog);
    ASSERT_TRUE(res.finished);
    EXPECT_TRUE(res.verified);
    // Returns are predicted by the RAS; the residual mispredicts are
    // the gshare warm-up on the loop-closing branch (history must
    // saturate before the steady-state entry trains).
    EXPECT_LT(res.core.branchMispredicts, 25u);
    EXPECT_GT(res.core.committedBranches, 200u);
}

/** Every machine shape must run every mini-program correctly. */
class PipelineConfigSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned, int>>
{};

TEST_P(PipelineConfigSweep, AllConfigsVerify)
{
    const auto [width, ports, mode_int] = GetParam();
    const auto mode = static_cast<BusMode>(mode_int);
    const CoreConfig cfg = makeConfig(width, ports, mode);

    for (const Program *prog :
         {&sumLoop(96), &stride0Loop(96), &storeConflictLoop(48),
          &arithChainLoop(96), &branchyLoop(128), &callLoop(48)}) {
        const SimResult res = simulate(cfg, *prog);
        ASSERT_TRUE(res.finished);
        EXPECT_TRUE(res.verified);
        EXPECT_EQ(res.engine.validationValueMismatches, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineConfigSweep,
    ::testing::Combine(::testing::Values(4u, 8u),
                       ::testing::Values(1u, 2u, 4u),
                       ::testing::Values(0, 1, 2)));

} // namespace
} // namespace sdv
