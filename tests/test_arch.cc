/**
 * @file
 * Unit tests for the functional substrate: sparse memory, architectural
 * state, and the executor's instruction semantics.
 */

#include <deque>

#include <gtest/gtest.h>

#include "arch/executor.hh"
#include "isa/builder.hh"

namespace sdv {
namespace {

TEST(SparseMemory, ZeroFillBeforeWrite)
{
    SparseMemory mem;
    EXPECT_EQ(mem.read64(0x1000), 0u);
    EXPECT_EQ(mem.read32(0xdeadbeef), 0u);
    EXPECT_EQ(mem.numPages(), 0u);
}

TEST(SparseMemory, ReadWriteRoundTrip)
{
    SparseMemory mem;
    mem.write64(0x2000, 0x1122334455667788ULL);
    EXPECT_EQ(mem.read64(0x2000), 0x1122334455667788ULL);
    EXPECT_EQ(mem.read32(0x2000), 0x55667788u);
    EXPECT_EQ(mem.read32(0x2004), 0x11223344u);
    EXPECT_EQ(mem.read(0x2007, 1), 0x11u);
}

TEST(SparseMemory, CrossPageAccess)
{
    SparseMemory mem;
    const Addr addr = SparseMemory::pageBytes - 4; // straddles page 0/1
    mem.write64(addr, 0xa1b2c3d4e5f60718ULL);
    EXPECT_EQ(mem.read64(addr), 0xa1b2c3d4e5f60718ULL);
    EXPECT_EQ(mem.numPages(), 2u);
}

TEST(SparseMemory, EqualsIgnoresUntouchedZeroPages)
{
    SparseMemory a, b;
    a.write64(0x5000, 0); // touched but still zero
    EXPECT_TRUE(a.equals(b));
    EXPECT_TRUE(b.equals(a));
    a.write64(0x5000, 7);
    EXPECT_FALSE(a.equals(b));
    b.write64(0x5000, 7);
    EXPECT_TRUE(a.equals(b));
}

TEST(ArchState, ZeroRegisterIsHardwired)
{
    ArchState st;
    st.setReg(0, 42);
    EXPECT_EQ(st.reg(0), 0u);
    st.setReg(5, 42);
    EXPECT_EQ(st.reg(5), 42u);
}

TEST(ArchState, DoubleRoundTrip)
{
    ArchState st;
    st.setRegFromDouble(33, 3.25);
    EXPECT_DOUBLE_EQ(st.regAsDouble(33), 3.25);
}

/** Run a tiny program functionally and return the core. */
FunctionalCore
runProgram(Program &&prog, std::uint64_t max_insts = 100000)
{
    // deque: stable element addresses keep FunctionalCore's program
    // reference valid across later calls
    static std::deque<Program> keeper;
    keeper.push_back(std::move(prog));
    FunctionalCore core(keeper.back());
    core.run(max_insts);
    return core;
}

TEST(Executor, IntegerArithmetic)
{
    ProgramBuilder b;
    b.ldi(1, 20);
    b.ldi(2, 22);
    b.add(3, 1, 2);     // 42
    b.sub(4, 1, 2);     // -2
    b.mul(5, 1, 2);     // 440
    b.div(6, 2, 1);     // 1
    b.cmplt(7, 4, 0);   // -2 < 0 -> 1
    b.halt();

    FunctionalCore core = runProgram(b.finish());
    EXPECT_TRUE(core.halted());
    EXPECT_EQ(core.state().reg(3), 42u);
    EXPECT_EQ(std::int64_t(core.state().reg(4)), -2);
    EXPECT_EQ(core.state().reg(5), 440u);
    EXPECT_EQ(core.state().reg(6), 1u);
    EXPECT_EQ(core.state().reg(7), 1u);
}

TEST(Executor, DivisionEdgeCases)
{
    ProgramBuilder b;
    b.ldi(1, 5);
    b.ldi(2, 0);
    b.div(3, 1, 2); // divide by zero -> 0
    b.ldi(4, -1);
    b.loadImm64(5, 0x8000000000000000ULL); // INT64_MIN
    b.div(6, 5, 4); // overflow -> INT64_MIN
    b.halt();

    FunctionalCore core = runProgram(b.finish());
    EXPECT_EQ(core.state().reg(3), 0u);
    EXPECT_EQ(core.state().reg(6), 0x8000000000000000ULL);
}

TEST(Executor, LoadImm64Variants)
{
    ProgramBuilder b;
    b.loadImm64(1, 0x12345678ULL);
    b.loadImm64(2, 0xffffffffffffffffULL);
    b.loadImm64(3, 0xdeadbeefcafef00dULL);
    b.loadImm64(4, 0x80000000ULL); // needs LDIH (sign ext would set top)
    b.halt();

    FunctionalCore core = runProgram(b.finish());
    EXPECT_EQ(core.state().reg(1), 0x12345678ULL);
    EXPECT_EQ(core.state().reg(2), 0xffffffffffffffffULL);
    EXPECT_EQ(core.state().reg(3), 0xdeadbeefcafef00dULL);
    EXPECT_EQ(core.state().reg(4), 0x80000000ULL);
}

TEST(Executor, MemoryOps)
{
    ProgramBuilder b;
    const Addr buf = b.allocWords("buf", 4);
    b.loadAddr(1, buf);
    b.ldi(2, 77);
    b.stq(2, 1, 0);
    b.ldq(3, 1, 0);
    b.stl(2, 1, 8);
    b.ldl(4, 1, 8);
    b.ldi(5, -5);
    b.stl(5, 1, 16);
    b.ldl(6, 1, 16); // sign-extended reload
    b.halt();

    FunctionalCore core = runProgram(b.finish());
    EXPECT_EQ(core.state().reg(3), 77u);
    EXPECT_EQ(core.state().reg(4), 77u);
    EXPECT_EQ(std::int64_t(core.state().reg(6)), -5);
}

TEST(Executor, FloatingPoint)
{
    ProgramBuilder b;
    const Addr buf = b.allocWords("fbuf", 2);
    b.pokeDouble(buf, 1.5);
    b.pokeDouble(buf + 8, 2.5);
    b.loadAddr(1, buf);
    b.fld(33, 1, 0);
    b.fld(34, 1, 8);
    b.fadd(35, 33, 34); // 4.0
    b.fmul(36, 33, 34); // 3.75
    b.fdiv(37, 34, 33); // 1.666..
    b.fcmplt(2, 33, 34); // 1
    b.cvtfi(3, 35);      // 4
    b.ldi(4, 9);
    b.cvtif(38, 4);      // 9.0
    b.halt();

    FunctionalCore core = runProgram(b.finish());
    EXPECT_DOUBLE_EQ(core.state().regAsDouble(35), 4.0);
    EXPECT_DOUBLE_EQ(core.state().regAsDouble(36), 3.75);
    EXPECT_NEAR(core.state().regAsDouble(37), 2.5 / 1.5, 1e-12);
    EXPECT_EQ(core.state().reg(2), 1u);
    EXPECT_EQ(core.state().reg(3), 4u);
    EXPECT_DOUBLE_EQ(core.state().regAsDouble(38), 9.0);
}

TEST(Executor, LoopAndBranches)
{
    // sum = 0; for (i = 10; i != 0; --i) sum += i;  => 55
    ProgramBuilder b;
    b.ldi(1, 10);
    b.ldi(2, 0);
    auto loop = b.here();
    b.add(2, 2, 1);
    b.addi(1, 1, -1);
    b.bnez(1, loop);
    b.halt();

    FunctionalCore core = runProgram(b.finish());
    EXPECT_EQ(core.state().reg(2), 55u);
    EXPECT_EQ(core.instCount(), 2u + 3u * 10u + 1u);
}

TEST(Executor, JumpAndLink)
{
    ProgramBuilder b;
    auto func = b.newLabel();
    auto done = b.newLabel();
    b.ldi(1, 5);
    b.jal(func);        // call
    b.br(done);
    b.bind(func);
    b.addi(1, 1, 100);  // body: r1 += 100
    b.jr(31);           // return
    b.bind(done);
    b.halt();

    FunctionalCore core = runProgram(b.finish());
    EXPECT_EQ(core.state().reg(1), 105u);
}

TEST(Executor, BackwardBranchOffsetsEncodeNegative)
{
    ProgramBuilder b;
    b.ldi(1, 3);
    auto loop = b.here();
    b.addi(1, 1, -1);
    b.bnez(1, loop);
    b.halt();
    Program prog = b.finish();

    // The bnez at slot 2 targets slot 1 -> imm == -1.
    const Instruction bnez = prog.instAt(prog.codeBase() + 2 * instBytes);
    EXPECT_EQ(bnez.op, Opcode::BNEZ);
    EXPECT_EQ(bnez.imm, -1);
}

TEST(Executor, HaltStopsRun)
{
    ProgramBuilder b;
    b.halt();
    b.ldi(1, 1); // never reached
    FunctionalCore core = runProgram(b.finish());
    EXPECT_TRUE(core.halted());
    EXPECT_EQ(core.state().reg(1), 0u);
    EXPECT_EQ(core.instCount(), 1u);
}

TEST(Executor, RecordFieldsForLoadStore)
{
    ProgramBuilder b;
    const Addr buf = b.allocWords("buf", 1);
    b.loadAddr(1, buf);
    b.ldi(2, 123);
    b.stq(2, 1, 0);
    b.ldq(3, 1, 0);
    b.halt();
    static std::deque<Program> keeper;
    keeper.push_back(b.finish());
    FunctionalCore core(keeper.back());

    // Skip the address materialization (2 slots possible) + ldi.
    ExecRecord rec;
    do {
        rec = core.step();
    } while (!rec.inst.isStore());
    EXPECT_TRUE(rec.isMem);
    EXPECT_TRUE(rec.isStore);
    EXPECT_EQ(rec.addr, buf);
    EXPECT_EQ(rec.size, 8u);
    EXPECT_EQ(rec.value, 123u);

    rec = core.step();
    EXPECT_TRUE(rec.inst.isLoad());
    EXPECT_EQ(rec.addr, buf);
    EXPECT_EQ(rec.value, 123u);
    EXPECT_TRUE(rec.writesReg);
}

TEST(Loader, CodeAndDataLoaded)
{
    ProgramBuilder b;
    const Addr buf = b.allocWords("buf", 2);
    b.pokeWord(buf, 11);
    b.pokeWord(buf + 8, 22);
    b.nop();
    b.halt();
    Program prog = b.finish();

    SparseMemory mem;
    const Addr entry = loadProgram(prog, mem);
    EXPECT_EQ(entry, prog.codeBase());
    EXPECT_EQ(mem.read64(buf), 11u);
    EXPECT_EQ(mem.read64(buf + 8), 22u);
    Instruction first;
    ASSERT_TRUE(Instruction::decode(mem.read64(prog.codeBase()), first));
    EXPECT_EQ(first.op, Opcode::NOP);
}

} // namespace
} // namespace sdv
