/**
 * @file
 * Integration tests over the bundled SPEC95-like workloads and the
 * Figure 1/3 analyzers: every workload must run to completion and
 * verify on representative machine shapes, and the suite-level
 * statistics must stay in the bands the figures rely on.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "sim/stride_profiler.hh"
#include "sim/vect_analyzer.hh"
#include "workloads/workload.hh"

namespace sdv {
namespace {

TEST(Workloads, RegistryListsTwelveInPaperOrder)
{
    const auto &all = allWorkloads();
    ASSERT_EQ(all.size(), 12u);
    EXPECT_EQ(all.front().name, "go");
    EXPECT_EQ(all[7].name, "vortex");
    EXPECT_EQ(all.back().name, "fpppp");
    EXPECT_EQ(intWorkloadNames().size(), 8u);
    EXPECT_EQ(fpWorkloadNames().size(), 4u);
    EXPECT_NE(findWorkload("swim"), nullptr);
    EXPECT_EQ(findWorkload("nonesuch"), nullptr);
}

TEST(Workloads, ScaleGrowsDynamicLength)
{
    const Program p1 = buildWorkload("compress", 1);
    const Program p2 = buildWorkload("compress", 2);
    const VectAnalysis a1 = analyzeVectorizability(p1);
    const VectAnalysis a2 = analyzeVectorizability(p2);
    EXPECT_GT(a2.insts, a1.insts + a1.insts / 2);
}

/** Every workload, on the paper's headline machine, must finish,
 *  verify, and never commit a wrong validated value. */
class WorkloadRun : public ::testing::TestWithParam<int>
{};

TEST_P(WorkloadRun, VerifiesOnHeadlineMachine)
{
    const Workload &w = allWorkloads()[size_t(GetParam())];
    const Program prog = w.instantiate(1);
    const SimResult r =
        simulate(makeConfig(4, 1, BusMode::WideBusSdv), prog);
    ASSERT_TRUE(r.finished) << w.name;
    EXPECT_TRUE(r.verified) << w.name;
    EXPECT_EQ(r.engine.validationValueMismatches, 0u) << w.name;
    EXPECT_GT(r.insts, 20000u) << w.name;
    // The mechanism must engage on every workload.
    EXPECT_GT(r.core.committedValidations, 100u) << w.name;
}

TEST_P(WorkloadRun, SdvNeverLosesToWideBus)
{
    // Cycle counts: vectorization must not slow any workload down by
    // more than noise (the paper reports gains everywhere).
    const Workload &w = allWorkloads()[size_t(GetParam())];
    const Program prog = w.instantiate(1);
    const SimResult v = simulate(makeConfig(4, 1, BusMode::WideBusSdv),
                                 prog, 50'000'000, false);
    const SimResult im = simulate(makeConfig(4, 1, BusMode::WideBus),
                                  prog, 50'000'000, false);
    EXPECT_LT(double(v.cycles), double(im.cycles) * 1.02) << w.name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadRun,
                         ::testing::Range(0, 12));

TEST(Analyzers, StrideProfileShapeMatchesPaper)
{
    // Suite-level claims of Section 2: stride 0 dominates both suites
    // and nearly all strided loads stay below 4 elements.
    double int0 = 0, fp0 = 0, int_lt4 = 0, fp_lt4 = 0;
    unsigned n_int = 0, n_fp = 0;
    for (const Workload &w : allWorkloads()) {
        const Program p = w.instantiate(1);
        const StrideProfile prof = profileStrides(p);
        if (w.isFp) {
            fp0 += prof.strideHist.fraction(0);
            fp_lt4 += prof.stridedBelow4Fraction();
            ++n_fp;
        } else {
            int0 += prof.strideHist.fraction(0);
            int_lt4 += prof.stridedBelow4Fraction();
            ++n_int;
        }
    }
    EXPECT_GT(int0 / n_int, 0.30); // stride 0 is the biggest bucket
    EXPECT_GT(fp0 / n_fp, 0.30);
    EXPECT_GT(int_lt4 / n_int, 0.90); // paper: 97.9%
    EXPECT_GT(fp_lt4 / n_fp, 0.75);   // paper: 81.3%
}

TEST(Analyzers, VectorizableFractionInPaperBand)
{
    double int_sum = 0, fp_sum = 0;
    unsigned n_int = 0, n_fp = 0;
    for (const Workload &w : allWorkloads()) {
        const Program p = w.instantiate(1);
        const double f = analyzeVectorizability(p).fraction();
        EXPECT_GT(f, 0.10) << w.name;
        EXPECT_LT(f, 0.90) << w.name;
        (w.isFp ? fp_sum : int_sum) += f;
        (w.isFp ? n_fp : n_int) += 1;
    }
    // Paper: ~47% (INT) and ~51% (FP); allow a generous band.
    EXPECT_GT(int_sum / n_int, 0.30);
    EXPECT_LT(int_sum / n_int, 0.60);
    EXPECT_GT(fp_sum / n_fp, 0.35);
    EXPECT_LT(fp_sum / n_fp, 0.70);
}

TEST(Analyzers, StoreKillSuppressesRewrittenWorkspaces)
{
    // fpppp's rewritten cells must not count as endlessly vectorizable.
    const Program p = buildWorkload("fpppp", 1);
    const VectAnalysis a = analyzeVectorizability(p);
    EXPECT_LT(a.fraction(), 0.75);
}

TEST(Analyzers, AnalyzerTracksEngineOrdering)
{
    // The three most vectorizable workloads by the analyzer should
    // also produce more validations than the three least vectorizable
    // ones in the timing engine.
    double most = 0, least = 0;
    for (const char *name : {"m88ksim", "swim", "applu"}) {
        const Program p = buildWorkload(name, 1);
        most += simulate(makeConfig(4, 1, BusMode::WideBusSdv), p,
                         50'000'000, false)
                    .validationFraction();
    }
    for (const char *name : {"go", "gcc", "vortex"}) {
        const Program p = buildWorkload(name, 1);
        least += simulate(makeConfig(4, 1, BusMode::WideBusSdv), p,
                          50'000'000, false)
                     .validationFraction();
    }
    EXPECT_GT(most, least);
}

} // namespace
} // namespace sdv
