/**
 * @file
 * Equivalence tests of trace-compiled dispatch: for every tier-1
 * workload the compiled-trace run and the interpreter reference run
 * (--no-trace) must produce bit-identical statistics and committed-
 * stream hashes — in the default configuration and under the
 * adversarial modes (eager chaining, periodic quiesce, fault
 * injection). Also covers the compiled trace itself: slot contents,
 * patch() recompilation and append() extension, and the functional
 * fast path against the interpreter.
 */

#include <deque>

#include <gtest/gtest.h>

#include "arch/executor.hh"
#include "isa/trace.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace sdv {
namespace {

std::deque<Program> &
keeper()
{
    static std::deque<Program> progs;
    return progs;
}

const Program &
keep(Program &&p)
{
    keeper().push_back(std::move(p));
    return keeper().back();
}

/** Every stat both runs must agree on, in one comparable bundle. */
struct RunDigest
{
    SimResult res;
    std::uint64_t commitHash = 0;
};

RunDigest
runOnce(CoreConfig cfg, const Program &prog, bool trace, bool verify,
        std::uint64_t quiesce_interval = 0)
{
    cfg.traceExec = trace;
    Simulator sim(cfg, prog);
    RunDigest d;
    d.res = sim.run(50'000'000, verify, quiesce_interval);
    d.commitHash = sim.core().commitPcHash();
    return d;
}

/** Assert full equality of the stats the figures are built from.
 *  Unlike the event-skip equivalence suite, nothing is excluded:
 *  dispatch mode must not be observable in any counter. */
void
expectIdentical(const RunDigest &tr, const RunDigest &ref,
                const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(tr.res.finished, ref.res.finished);
    EXPECT_EQ(tr.res.cycles, ref.res.cycles);
    EXPECT_EQ(tr.res.insts, ref.res.insts);
    EXPECT_DOUBLE_EQ(tr.res.ipc, ref.res.ipc);
    EXPECT_EQ(tr.commitHash, ref.commitHash);

    const CoreStats &a = tr.res.core;
    const CoreStats &b = ref.res.core;
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committedInsts, b.committedInsts);
    EXPECT_EQ(a.committedLoads, b.committedLoads);
    EXPECT_EQ(a.committedStores, b.committedStores);
    EXPECT_EQ(a.committedBranches, b.committedBranches);
    EXPECT_EQ(a.committedValidations, b.committedValidations);
    EXPECT_EQ(a.committedLoadValidations, b.committedLoadValidations);
    EXPECT_EQ(a.scalarLoadAccesses, b.scalarLoadAccesses);
    EXPECT_EQ(a.loadForwards, b.loadForwards);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.fetchStallCycles, b.fetchStallCycles);
    EXPECT_EQ(a.fetchStallValWaitCycles, b.fetchStallValWaitCycles);
    EXPECT_EQ(a.decodeBlockCycles, b.decodeBlockCycles);
    EXPECT_EQ(a.robFullStalls, b.robFullStalls);
    EXPECT_EQ(a.lsqFullStalls, b.lsqFullStalls);
    EXPECT_EQ(a.storeConflictSquashes, b.storeConflictSquashes);
    EXPECT_EQ(a.squashedInsts, b.squashedInsts);
    EXPECT_EQ(a.eventSkippedCycles, b.eventSkippedCycles);
    EXPECT_EQ(a.eventSkipJumps, b.eventSkipJumps);
    EXPECT_EQ(a.postMispredictWindowInsts, b.postMispredictWindowInsts);
    EXPECT_EQ(a.postMispredictReused, b.postMispredictReused);

    EXPECT_EQ(tr.res.ports.cycles, ref.res.ports.cycles);
    EXPECT_EQ(tr.res.ports.busyPortCycles, ref.res.ports.busyPortCycles);
    EXPECT_EQ(tr.res.ports.readAccesses, ref.res.ports.readAccesses);
    EXPECT_EQ(tr.res.ports.writeAccesses, ref.res.ports.writeAccesses);
    EXPECT_EQ(tr.res.ports.wordsServed, ref.res.ports.wordsServed);
    EXPECT_EQ(tr.res.wideBus.totalReads, ref.res.wideBus.totalReads);
    for (unsigned n = 0; n <= 4; ++n)
        EXPECT_EQ(tr.res.wideBus.usefulWords[n],
                  ref.res.wideBus.usefulWords[n]);

    EXPECT_EQ(tr.res.engine.loadSpawns, ref.res.engine.loadSpawns);
    EXPECT_EQ(tr.res.engine.loadValidations,
              ref.res.engine.loadValidations);
    EXPECT_EQ(tr.res.engine.arithValidations,
              ref.res.engine.arithValidations);
    EXPECT_EQ(tr.res.engine.storeRangeConflicts,
              ref.res.engine.storeRangeConflicts);
    EXPECT_EQ(tr.res.engine.lateValidationFallbacks,
              ref.res.engine.lateValidationFallbacks);
    EXPECT_EQ(tr.res.engine.validationValueMismatches,
              ref.res.engine.validationValueMismatches);
    EXPECT_EQ(tr.res.datapath.elemsComputed,
              ref.res.datapath.elemsComputed);
    EXPECT_EQ(tr.res.datapath.elemLoadAccessesIssued,
              ref.res.datapath.elemLoadAccessesIssued);
    EXPECT_EQ(tr.res.fates.regsReleased, ref.res.fates.regsReleased);
    EXPECT_EQ(tr.res.fates.elemsComputedUsed,
              ref.res.fates.elemsComputedUsed);
    EXPECT_EQ(tr.res.fates.lifetimeCycles, ref.res.fates.lifetimeCycles);
    EXPECT_EQ(tr.res.fates.releasedCond1, ref.res.fates.releasedCond1);
    EXPECT_EQ(tr.res.fates.releasedCond2, ref.res.fates.releasedCond2);
    EXPECT_EQ(tr.res.fates.releasedKilled, ref.res.fates.releasedKilled);

    EXPECT_EQ(tr.res.l1d.accesses(), ref.res.l1d.accesses());
    EXPECT_EQ(tr.res.l1d.misses(), ref.res.l1d.misses());
    EXPECT_EQ(tr.res.l1i.accesses(), ref.res.l1i.accesses());
    EXPECT_EQ(tr.res.l1i.misses(), ref.res.l1i.misses());
    EXPECT_EQ(tr.res.l2.accesses(), ref.res.l2.accesses());
    EXPECT_EQ(tr.res.l2.misses(), ref.res.l2.misses());
}

TEST(TraceCompile, BitIdenticalOnEveryTier1Workload)
{
    for (const Workload &w : allWorkloads()) {
        const Program &prog = keep(w.instantiate(1));
        for (BusMode mode : {BusMode::WideBusSdv, BusMode::ScalarBus}) {
            const CoreConfig cfg = makeConfig(4, 1, mode);
            // Verification (functional re-execution + state compare)
            // on the vectorized config, where divergence would bite.
            const bool verify = mode == BusMode::WideBusSdv;
            const RunDigest tr = runOnce(cfg, prog, true, verify);
            const RunDigest ref = runOnce(cfg, prog, false, verify);
            ASSERT_TRUE(ref.res.finished);
            if (verify) {
                EXPECT_TRUE(tr.res.verified);
                EXPECT_TRUE(ref.res.verified);
            }
            expectIdentical(
                tr, ref,
                w.name + "/" +
                    (mode == BusMode::WideBusSdv ? "xpV" : "noIM"));
        }
    }
}

TEST(TraceCompile, AdversarialModesStayBitIdentical)
{
    // The modes that stress speculative-state bookkeeping hardest:
    // eager chain spawning, periodic pipeline quiesce, and in-engine
    // fault injection (whose recovery path replays through the
    // oracle). The dispatch mechanism must be invisible in all three.
    for (const Workload &w : allWorkloads()) {
        const Program &prog = keep(w.instantiate(1));
        const CoreConfig base = makeConfig(4, 1, BusMode::WideBusSdv);

        {
            CoreConfig cfg = base;
            cfg.engine.eagerChainLoads = true;
            expectIdentical(runOnce(cfg, prog, true, false),
                            runOnce(cfg, prog, false, false),
                            w.name + "/eager-chain");
        }
        {
            expectIdentical(runOnce(base, prog, true, false, 3'000),
                            runOnce(base, prog, false, false, 3'000),
                            w.name + "/quiesce-interval");
        }
        {
            CoreConfig cfg = base;
            cfg.engine.fault.enabled = true;
            cfg.engine.fault.seed = 0x7ace5eedULL;
            cfg.engine.fault.elemFlipPpm = 500;
            cfg.engine.fault.vrmtFlipPpm = 500;
            expectIdentical(runOnce(cfg, prog, true, false),
                            runOnce(cfg, prog, false, false),
                            w.name + "/fault-injection");
        }
    }
}

// --- the compiled trace itself ---------------------------------------------

TEST(CompiledTrace, SlotsPrecomputeOperandsAndTargets)
{
    Program p;
    const Addr pc0 = p.append(Instruction(Opcode::ADDI, 1, 2, 0, -7));
    const Addr pc1 = p.append(Instruction(Opcode::BEQZ, 0, 1, 0, 3));
    p.append(Instruction(Opcode::HALT, 0, 0, 0, 0));
    p.predecodeAll();

    const CompiledTrace &t = p.trace();
    ASSERT_EQ(t.numSlots(), 3u);

    const CompiledTrace::Slot &s0 = t.slotAt(pc0);
    EXPECT_EQ(s0.inst.op, Opcode::ADDI);
    EXPECT_EQ(s0.simm, -7);
    EXPECT_EQ(s0.fallthrough, pc0 + instBytes);

    // Branch targets are folded at compile time: pc + imm * instBytes.
    const CompiledTrace::Slot &s1 = t.slotAt(pc1);
    EXPECT_EQ(s1.target, pc1 + Addr(3 * instBytes));
    EXPECT_EQ(s1.fallthrough, pc1 + instBytes);
}

TEST(CompiledTrace, PatchRecompilesAndAppendExtends)
{
    Program p;
    p.append(Instruction(Opcode::ADD, 1, 2, 3, 0));
    const Addr pc1 = p.append(Instruction(Opcode::LDQ, 4, 5, 0, 16));
    p.predecodeAll();
    ASSERT_EQ(p.trace().numSlots(), 2u);

    // Patch slot 1 (the builder's label-fixup path): the compiled slot
    // must be recompiled in place, not served stale.
    p.patch(1, Instruction(Opcode::LDQ, 4, 5, 0, 64));
    EXPECT_EQ(p.trace().slotAt(pc1).simm, 64);
    p.patch(1, Instruction(Opcode::BR, 0, 0, 0, -1));
    EXPECT_EQ(p.trace().slotAt(pc1).inst.op, Opcode::BR);
    EXPECT_EQ(p.trace().slotAt(pc1).target, pc1 - Addr(instBytes));

    // append() extends the existing trace one slot at a time.
    const Addr pc2 = p.append(Instruction(Opcode::HALT, 0, 0, 0, 0));
    ASSERT_EQ(p.trace().numSlots(), 3u);
    EXPECT_EQ(p.trace().slotAt(pc2).inst.op, Opcode::HALT);

    // A copy recompiles its own trace; patching it must not leak into
    // the original's compiled slots.
    Program q = p;
    q.patch(1, Instruction(Opcode::SUB, 7, 8, 9, 0));
    EXPECT_EQ(q.trace().slotAt(pc1).inst.op, Opcode::SUB);
    EXPECT_EQ(p.trace().slotAt(pc1).inst.op, Opcode::BR);
}

TEST(CompiledTrace, FunctionalFastPathMatchesInterpreter)
{
    // The oracle-at-fetch handlers and the interpreter must agree on
    // the full committed stream, instruction count and final state —
    // the property the fuzz divergence oracle now leans on.
    for (const char *name : {"compress", "swim", "fpppp"}) {
        SCOPED_TRACE(name);
        const Program &prog = keep(buildWorkload(name, 1));
        FunctionalCore a(prog, /*use_trace=*/true);
        FunctionalCore b(prog, /*use_trace=*/false);
        std::uint64_t ha = 0, hb = 0;
        a.runToHalt(&ha);
        b.runToHalt(&hb);
        EXPECT_EQ(ha, hb);
        EXPECT_EQ(a.instCount(), b.instCount());
        EXPECT_TRUE(a.state() == b.state());
        EXPECT_TRUE(a.memory().equals(b.memory()));
    }
}

} // namespace
} // namespace sdv
