/**
 * @file
 * Adversarial robustness tests (PR 6): checkpoint-loader fuzzing
 * (mutated / truncated / torn images rejected cleanly on every
 * workload), the fault-injection accounting invariant (every injected
 * speculative fault is detected or provably vanished — never silently
 * committed), the graceful-degradation path (chains demoted to scalar
 * under sustained faults stay bit-identical to a no-SDV run and
 * re-enable after a clean window), the speculation fuzzer's determinism
 * and repro round trip, and the simulator abort flag the job watchdog
 * drives.
 */

#include <atomic>
#include <cstdio>
#include <deque>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "sim/fault_injection.hh"
#include "sweep/checkpoint.hh"
#include "sweep/fuzz.hh"
#include "workloads/workload.hh"

namespace sdv {
namespace {

std::deque<Program> &
keeper()
{
    static std::deque<Program> progs;
    return progs;
}

const Program &
keep(Program &&p)
{
    keeper().push_back(std::move(p));
    return keeper().back();
}

// --- checkpoint-loader fuzzing ---------------------------------------------

/** Every mutated, truncated or torn image must be rejected by both the
 *  header-only validate() and the full restore() without touching the
 *  target simulator — across all 12 workloads, so format drift in any
 *  serialized component is caught. */
TEST(CheckpointFuzz, CorruptedImagesRejectedOnEveryWorkload)
{
    const CoreConfig cfg = makeConfig(4, 1, BusMode::WideBusSdv);
    Random rng(deriveSeed("ckpt-fuzz", "images", 1));

    for (const Workload &w : allWorkloads()) {
        SCOPED_TRACE(w.name);
        const Program &prog = keep(w.instantiate(1));
        Simulator warm(cfg, prog);
        ASSERT_TRUE(warm.warmup(5'000));
        const std::vector<std::uint8_t> bytes =
            sweep::Checkpoint::capture(warm);

        // Sanity: the pristine image is accepted.
        {
            Simulator target(cfg, prog);
            EXPECT_TRUE(sweep::Checkpoint::validate(target, bytes));
        }

        // Mutated: random single-bit byte flips at increasing rates.
        for (const std::uint32_t ppm : {200u, 2'000u, 20'000u}) {
            std::vector<std::uint8_t> mut = bytes;
            if (applyImageFaults(mut, rng, ppm) == 0)
                continue; // the draw spared every byte this round
            Simulator target(cfg, prog);
            EXPECT_FALSE(sweep::Checkpoint::validate(target, mut));
            std::string err;
            EXPECT_FALSE(sweep::Checkpoint::restore(target, mut, &err));
            EXPECT_FALSE(err.empty());
        }

        // Truncated: cut at the header, mid-payload and one-byte-short.
        for (const std::size_t len :
             {std::size_t(0), std::size_t(8), bytes.size() / 2,
              bytes.size() - 1}) {
            std::vector<std::uint8_t> cut(bytes.begin(),
                                          bytes.begin() +
                                              std::ptrdiff_t(len));
            Simulator target(cfg, prog);
            EXPECT_FALSE(sweep::Checkpoint::validate(target, cut));
            std::string err;
            EXPECT_FALSE(sweep::Checkpoint::restore(target, cut, &err));
        }

        // Torn: a valid prefix spliced with garbage of the right total
        // length (models a partially-flushed snapshot file).
        {
            std::vector<std::uint8_t> torn = bytes;
            for (std::size_t i = torn.size() / 2; i < torn.size(); ++i)
                torn[i] = std::uint8_t(rng.next());
            Simulator target(cfg, prog);
            EXPECT_FALSE(sweep::Checkpoint::validate(target, torn));
            std::string err;
            EXPECT_FALSE(sweep::Checkpoint::restore(target, torn, &err));
        }
    }
}

// --- fault-injection accounting --------------------------------------------

/** The silent-commit exactness invariant: every injected element flip
 *  is either detected by a validation, examined-and-benign, or
 *  provably vanished with its register — and the run still verifies
 *  against the functional oracle (faults can never reach architectural
 *  state). */
TEST(FaultInjection, EveryInjectedElementFaultIsAccounted)
{
    for (const char *name : {"compress", "go", "swim"}) {
        SCOPED_TRACE(name);
        const Program &prog = keep(buildWorkload(name, 1));

        CoreConfig cfg = makeConfig(4, 1, BusMode::WideBusSdv);
        cfg.engine.fault.enabled = true;
        cfg.engine.fault.seed = deriveSeed(name, "fault-test", 7);
        cfg.engine.fault.elemFlipPpm = 20'000;
        cfg.engine.fault.vrmtFlipPpm = 5'000;

        Simulator sim(cfg, prog);
        const SimResult res = sim.run(200'000'000, /*verify=*/true);
        ASSERT_TRUE(res.finished);
        EXPECT_TRUE(res.verified);

        // The rates are high enough that a rate-zero run would be a
        // plumbing regression, not luck.
        EXPECT_GT(res.engine.faultElemFlips, 0u);
        EXPECT_EQ(res.engine.faultElemFlips,
                  res.engine.faultValidationDetects +
                      res.engine.faultValidationBenign +
                      res.fates.faultInjectedVanished);

        // Architectural equivalence with a clean run of the same
        // machine: fault injection attacks the detection machinery,
        // never the committed stream.
        Simulator clean(makeConfig(4, 1, BusMode::WideBusSdv), prog);
        const SimResult cres = clean.run(200'000'000, /*verify=*/true);
        ASSERT_TRUE(cres.finished);
        EXPECT_EQ(sim.core().commitPcHash(), clean.core().commitPcHash());
        EXPECT_EQ(res.insts, cres.insts);
    }
}

/** Graceful degradation: sustained faults on a chain demote it to
 *  scalar execution (bit-identical to a no-SDV machine), and the chain
 *  re-speculates after a clean window. */
TEST(FaultInjection, DegradedChainsFallBackToScalarAndReenable)
{
    const Program &prog = keep(buildWorkload("compress", 1));

    CoreConfig cfg = makeConfig(4, 1, BusMode::WideBusSdv);
    cfg.engine.fault.enabled = true;
    cfg.engine.fault.seed = deriveSeed("compress", "degrade-test", 3);
    cfg.engine.fault.elemFlipPpm = 200'000; // hammer the chains
    cfg.engine.fault.demoteThreshold = 2;
    cfg.engine.fault.reenableWindow = 16;

    Simulator sim(cfg, prog);
    const SimResult res = sim.run(200'000'000, /*verify=*/true);
    ASSERT_TRUE(res.finished);
    EXPECT_TRUE(res.verified);
    EXPECT_GT(res.engine.faultChainDemotions, 0u);
    EXPECT_GT(res.engine.faultChainReenables, 0u);
    EXPECT_EQ(res.core.specChainDemotions,
              res.engine.faultChainDemotions);

    // The degraded run's architectural results match a machine with the
    // SDV engine off entirely (the scalar-fallback oracle).
    Simulator novec(makeConfig(4, 1, BusMode::WideBus), prog);
    const SimResult nres = novec.run(200'000'000, /*verify=*/true);
    ASSERT_TRUE(nres.finished);
    EXPECT_TRUE(nres.verified);
    EXPECT_EQ(sim.core().commitPcHash(), novec.core().commitPcHash());
    EXPECT_EQ(res.insts, nres.insts);
}

// --- speculation fuzzing ---------------------------------------------------

/** Case drawing is a pure function of (workload, sample, base seed). */
TEST(Fuzz, DrawIsDeterministic)
{
    const sweep::FuzzCase a = sweep::drawFuzzCase(
        "compress", 1, Footprint::Base, 3, 42, /*with_faults=*/true);
    const sweep::FuzzCase b = sweep::drawFuzzCase(
        "compress", 1, Footprint::Base, 3, 42, /*with_faults=*/true);
    EXPECT_EQ(a.fuzzSeed, b.fuzzSeed);
    EXPECT_EQ(a.quiesceInterval, b.quiesceInterval);
    EXPECT_EQ(a.eagerChain, b.eagerChain);
    EXPECT_EQ(a.vlen, b.vlen);
    EXPECT_EQ(a.numVregs, b.numVregs);
    EXPECT_EQ(a.ports, b.ports);
    EXPECT_EQ(a.tlConfidence, b.tlConfidence);
    EXPECT_EQ(a.fault.enabled, b.fault.enabled);
    EXPECT_EQ(a.fault.seed, b.fault.seed);

    // Different sample / seed -> different perturbations (somewhere).
    const sweep::FuzzCase c = sweep::drawFuzzCase(
        "compress", 1, Footprint::Base, 4, 42, /*with_faults=*/true);
    EXPECT_NE(a.fuzzSeed, c.fuzzSeed);
}

/** A miniature campaign: every sample passes its divergence oracle. */
TEST(Fuzz, QuickCampaignHasNoDivergences)
{
    sweep::FuzzOptions opt;
    opt.samples = 2;
    opt.baseSeed = 0;
    opt.jobs = 2;
    opt.quick = true;
    opt.reproPath = ::testing::TempDir() + "sdv_fuzz_repro_test.json";

    const sweep::FuzzReport rep = sweep::runFuzzCampaign(opt);
    EXPECT_EQ(rep.divergences, 0u);
    EXPECT_EQ(rep.outcomes.size(), 6u); // 3 quick workloads x 2 samples
    EXPECT_TRUE(rep.reproPath.empty()); // nothing to minimize
    for (const sweep::FuzzOutcome &o : rep.outcomes) {
        EXPECT_FALSE(o.diverged) << o.c.workload << " sample "
                                 << o.c.sample << ": " << o.reason;
        EXPECT_EQ(o.sdvHash, o.refHash);
        EXPECT_EQ(o.sdvInsts, o.refInsts);
    }
}

/** Repro files round-trip every perturbed knob. */
TEST(Fuzz, ReproFileRoundTrip)
{
    const sweep::FuzzCase c = sweep::drawFuzzCase(
        "ijpeg", 2, Footprint::Base, 5, 99, /*with_faults=*/true);
    const std::string path =
        ::testing::TempDir() + "sdv_repro_roundtrip.json";
    ASSERT_TRUE(sweep::writeFuzzRepro(path, c, "unit-test"));

    sweep::FuzzCase l;
    std::string err;
    ASSERT_TRUE(sweep::loadFuzzRepro(path, l, &err)) << err;
    std::remove(path.c_str());

    EXPECT_EQ(l.workload, c.workload);
    EXPECT_EQ(l.scale, c.scale);
    EXPECT_EQ(l.footprint, c.footprint);
    EXPECT_EQ(l.sample, c.sample);
    EXPECT_EQ(l.baseSeed, c.baseSeed);
    EXPECT_EQ(l.fuzzSeed, c.fuzzSeed);
    EXPECT_EQ(l.quiesceInterval, c.quiesceInterval);
    EXPECT_EQ(l.eagerChain, c.eagerChain);
    EXPECT_EQ(l.vlen, c.vlen);
    EXPECT_EQ(l.numVregs, c.numVregs);
    EXPECT_EQ(l.ports, c.ports);
    EXPECT_EQ(l.tlConfidence, c.tlConfidence);
    EXPECT_EQ(l.fault.enabled, c.fault.enabled);
    EXPECT_EQ(l.fault.seed, c.fault.seed);
    EXPECT_EQ(l.fault.elemFlipPpm, c.fault.elemFlipPpm);
    EXPECT_EQ(l.fault.vrmtFlipPpm, c.fault.vrmtFlipPpm);

    // Malformed input is rejected with a reason, not a crash.
    sweep::FuzzCase bad;
    EXPECT_FALSE(
        sweep::loadFuzzRepro("/nonexistent/repro.json", bad, &err));
    EXPECT_FALSE(err.empty());
}

// --- watchdog abort flag ---------------------------------------------------

/** The simulator-level mechanism the sweep job watchdog drives: a set
 *  abort flag stops run() promptly and marks the result timed out, not
 *  finished. */
TEST(Watchdog, AbortFlagStopsRunAndMarksTimedOut)
{
    const Program &prog = keep(buildWorkload("compress", 1));
    const CoreConfig cfg = makeConfig(4, 1, BusMode::WideBusSdv);

    std::atomic<bool> abort{true};
    Simulator sim(cfg, prog);
    sim.setAbortFlag(&abort);
    const SimResult res = sim.run(200'000'000);
    EXPECT_TRUE(res.timedOut);
    EXPECT_FALSE(res.finished);
    // The poll is sampled every 256 calls; a pre-set flag must stop the
    // run long before the program's natural length.
    Simulator full(cfg, prog);
    const SimResult fres = full.run(200'000'000);
    ASSERT_TRUE(fres.finished);
    EXPECT_LT(res.cycles, fres.cycles);

    // Clearing the flag restores normal completion.
    abort = false;
    Simulator again(cfg, prog);
    again.setAbortFlag(&abort);
    const SimResult ares = again.run(200'000'000, /*verify=*/true);
    EXPECT_TRUE(ares.finished);
    EXPECT_TRUE(ares.verified);
    EXPECT_FALSE(ares.timedOut);
}

// --- timing-channel pair / transient-exposure stats ------------------------

/** The attacker/victim pair is registered, buildable, and a quiesced
 *  run records the transient-exposure statistics the attack plan's
 *  JSON reports. */
TEST(TimingChannel, AttackPairExposesQuiesceStats)
{
    ASSERT_EQ(attackWorkloads().size(), 2u);
    ASSERT_NE(findWorkload("tc_victim"), nullptr);
    ASSERT_NE(findWorkload("tc_attack"), nullptr);

    for (const Workload &w : attackWorkloads()) {
        SCOPED_TRACE(w.name);
        const Program &prog = keep(w.instantiate(1));
        Simulator sim(makeConfig(4, 1, BusMode::WideBusSdv), prog);
        const SimResult res = sim.run(200'000'000, /*verify=*/true,
                                      /*quiesce_interval=*/2'000);
        ASSERT_TRUE(res.finished);
        EXPECT_TRUE(res.verified);
        EXPECT_GT(res.core.quiesceEvents, 0u);

        // Every released register lands in exactly one lifetime bucket.
        std::uint64_t hist = 0;
        for (const std::uint64_t b : res.fates.lifetimeHist)
            hist += b;
        EXPECT_EQ(hist, res.fates.regsReleased);
    }
}

} // namespace
} // namespace sdv
