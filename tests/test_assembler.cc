/**
 * @file
 * Tests for the two-pass text assembler: syntax, labels, directives,
 * pseudo-instructions, end-to-end execution and error reporting.
 */

#include <gtest/gtest.h>

#include "arch/executor.hh"
#include "isa/assembler.hh"

namespace sdv {
namespace {

TEST(Assembler, MinimalProgram)
{
    const AsmResult r = assemble("halt\n");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.program.numInsts(), 1u);
    EXPECT_EQ(r.program.instAt(r.program.codeBase()).op, Opcode::HALT);
}

TEST(Assembler, CommentsAndBlankLines)
{
    const AsmResult r = assemble(R"(
; full line comment
   # another comment style
nop   ; trailing comment
halt
)");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.program.numInsts(), 2u);
}

TEST(Assembler, AllOperandForms)
{
    const AsmResult r = assemble(R"(
    add r3, r1, r2
    addi r4, r3, -16
    ldq r5, 24(r4)
    stq r5, -8(r4)
    fadd f2, f0, f1
    cvtif f3, r5
    jr r31
    halt
)");
    ASSERT_TRUE(r.ok) << r.error;
    const Program &p = r.program;
    EXPECT_EQ(p.instAt(p.codeBase()).disasm(), "add r3, r1, r2");
    EXPECT_EQ(p.instAt(p.codeBase() + 16).disasm(), "ldq r5, 24(r4)");
    EXPECT_EQ(p.instAt(p.codeBase() + 24).disasm(), "stq r5, -8(r4)");
    EXPECT_EQ(p.instAt(p.codeBase() + 32).disasm(), "fadd f2, f0, f1");
}

TEST(Assembler, LabelsForwardAndBackward)
{
    const AsmResult r = assemble(R"(
start:
    ldi r1, 3
loop:
    addi r1, r1, -1
    bnez r1, loop
    br  done
    nop            ; skipped
done:
    halt
)");
    ASSERT_TRUE(r.ok) << r.error;
    FunctionalCore core(r.program);
    core.run(1000);
    EXPECT_TRUE(core.halted());
    EXPECT_EQ(core.state().reg(1), 0u);
}

TEST(Assembler, DataDirectivesAndPseudos)
{
    const AsmResult r = assemble(R"(
.data table 4
.word table 0 42
.word table 2 -7
.double table 3 2.5

    la  r1, table
    ldq r2, 0(r1)
    ldq r3, 16(r1)
    fld f0, 24(r1)
    li  r4, 0x123456789ab
    halt
)");
    ASSERT_TRUE(r.ok) << r.error;
    FunctionalCore core(r.program);
    core.run(1000);
    EXPECT_EQ(core.state().reg(2), 42u);
    EXPECT_EQ(std::int64_t(core.state().reg(3)), -7);
    EXPECT_DOUBLE_EQ(core.state().regAsDouble(32), 2.5);
    EXPECT_EQ(core.state().reg(4), 0x123456789abULL);
}

TEST(Assembler, EntryDirective)
{
    const AsmResult r = assemble(R"(
.entry main
helper:
    halt
main:
    ldi r1, 9
    halt
)");
    ASSERT_TRUE(r.ok) << r.error;
    FunctionalCore core(r.program);
    core.run(10);
    EXPECT_EQ(core.state().reg(1), 9u);
}

TEST(Assembler, JalAndCall)
{
    const AsmResult r = assemble(R"(
.entry main
double_it:
    add r2, r1, r1
    jr r31
main:
    ldi r1, 21
    jal double_it
    halt
)");
    ASSERT_TRUE(r.ok) << r.error;
    FunctionalCore core(r.program);
    core.run(100);
    EXPECT_EQ(core.state().reg(2), 42u);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    EXPECT_NE(assemble("bogus r1, r2\n").error.find("line 1"),
              std::string::npos);
    EXPECT_NE(assemble("nop\nldq r1 r2\n").error.find("line 2"),
              std::string::npos);
    EXPECT_FALSE(assemble("beqz r1, nowhere\nhalt\n").ok);
    EXPECT_FALSE(assemble("ldq r1, 0(r2)\nlabel:\n").ok); // trailing label
    EXPECT_FALSE(assemble(".data x\nhalt\n").ok);
    EXPECT_FALSE(assemble("add r1, r2\nhalt\n").ok); // missing operand
    EXPECT_FALSE(assemble("la r1, nosuch\nhalt\n").ok);
    EXPECT_FALSE(assemble("dup:\ndup:\nhalt\n").ok);
}

TEST(Assembler, RunsOnTimingSimulator)
{
    const AsmResult r = assemble(R"(
.data arr 64
.entry main
main:
    la   r10, arr
    li   r11, 64
    li   r12, 5
fill:
    stq  r12, 0(r10)
    addi r10, r10, 8
    addi r11, r11, -1
    bnez r11, fill
    la   r10, arr
    li   r11, 64
    li   r20, 0
sum:
    ldq  r1, 0(r10)
    add  r20, r20, r1
    addi r10, r10, 8
    addi r11, r11, -1
    bnez r11, sum
    halt
)");
    ASSERT_TRUE(r.ok) << r.error;
    FunctionalCore ref(r.program);
    ref.run(100000);
    EXPECT_EQ(ref.state().reg(20), 64u * 5u);
}

} // namespace
} // namespace sdv
