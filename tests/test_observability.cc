/**
 * @file
 * Tests of the observability layer: attaching the flight recorder and
 * interval telemetry must not perturb simulation (bit-identity on
 * every tier-1 workload, statistics and commit hashes included), trace
 * serialization must be deterministic across executor schedules, the
 * ring bound must hold, and the telemetry interval sums must equal the
 * end-of-run aggregates exactly. Plus unit coverage for the shared
 * Histogram quantile/JSON helpers the trace reports are built on.
 */

#include <deque>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/histogram.hh"
#include "obs/hooks.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "sim/simulator.hh"
#include "sweep/executor.hh"
#include "sweep/plan.hh"
#include "workloads/workload.hh"

namespace sdv {
namespace {

std::deque<Program> &
keeper()
{
    static std::deque<Program> progs;
    return progs;
}

const Program &
keep(Program &&p)
{
    keeper().push_back(std::move(p));
    return keeper().back();
}

/** The identity any observer must preserve: timing, instruction
 *  stream, and the statistics every figure is built from. */
void
expectSameSimulation(const SimResult &a, const SimResult &b,
                     std::uint64_t hash_a, std::uint64_t hash_b,
                     const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(a.finished, b.finished);
    EXPECT_EQ(a.verified, b.verified);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_EQ(hash_a, hash_b);

    EXPECT_EQ(a.core.committedValidations, b.core.committedValidations);
    EXPECT_EQ(a.core.fetchStallCycles, b.core.fetchStallCycles);
    EXPECT_EQ(a.core.fetchStallValWaitCycles,
              b.core.fetchStallValWaitCycles);
    EXPECT_EQ(a.core.squashedInsts, b.core.squashedInsts);
    EXPECT_EQ(a.core.eventSkipJumps, b.core.eventSkipJumps);
    EXPECT_EQ(a.core.eventSkippedCycles, b.core.eventSkippedCycles);
    EXPECT_EQ(a.engine.loadChainSpawns, b.engine.loadChainSpawns);
    EXPECT_EQ(a.engine.arithChainSpawns, b.engine.arithChainSpawns);
    EXPECT_EQ(a.engine.loadValidations, b.engine.loadValidations);
    EXPECT_EQ(a.engine.arithValidations, b.engine.arithValidations);
    EXPECT_EQ(a.engine.lateValidationFallbacks,
              b.engine.lateValidationFallbacks);
    EXPECT_EQ(a.fates.regsReleased, b.fates.regsReleased);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(a.fates.lifetimeHist[i], b.fates.lifetimeHist[i]);
    EXPECT_EQ(a.l1d.readMisses, b.l1d.readMisses);
    EXPECT_EQ(a.l1i.readMisses, b.l1i.readMisses);
    EXPECT_EQ(a.l2.readMisses, b.l2.readMisses);
}

// --- observation does not perturb simulation -------------------------------

TEST(Observability, InstrumentedRunIsBitIdenticalOnEveryWorkload)
{
    for (const Workload &w : allWorkloads()) {
        const Program &prog = keep(w.instantiate(1));
        const CoreConfig cfg = makeConfig(4, 1, BusMode::WideBusSdv);

        Simulator plain(cfg, prog);
        const SimResult ra = plain.run(50'000'000, /*verify=*/true);

        Simulator instrumented(cfg, prog);
        obs::TraceRecorder rec;
        rec.configure(obs::CatAll, /*ring_capacity=*/0);
        obs::IntervalTelemetry telemetry(1024);
        instrumented.setRecorder(&rec);
        instrumented.setTelemetry(&telemetry);
        const SimResult rb = instrumented.run(50'000'000, /*verify=*/true);

        ASSERT_TRUE(ra.finished) << w.name;
        expectSameSimulation(ra, rb, plain.core().commitPcHash(),
                             instrumented.core().commitPcHash(), w.name);
#if SDV_OBS_ENABLED
        // The SDV configs exercise the chain lifecycle on every
        // workload, so an instrumented run must actually observe it.
        EXPECT_GT(rec.recorded(), 0u) << w.name;
        EXPECT_EQ(rec.dropped(), 0u) << w.name;
        EXPECT_FALSE(telemetry.samples().empty()) << w.name;
#endif
    }
}

#if SDV_OBS_ENABLED

// --- recorder semantics ----------------------------------------------------

TEST(Observability, RingCapacityBoundsRetainedEvents)
{
    const Program &prog = keep(buildWorkload("swim", 1));
    Simulator sim(makeConfig(4, 1, BusMode::WideBusSdv), prog);
    obs::TraceRecorder rec;
    rec.configure(obs::CatAll, /*ring_capacity=*/256);
    sim.setRecorder(&rec);
    ASSERT_TRUE(sim.run(50'000'000, /*verify=*/false).finished);

    EXPECT_LE(rec.size(), 256u);
    EXPECT_GT(rec.dropped(), 0u);
    EXPECT_EQ(rec.recorded(), rec.dropped() + rec.size());

    // The ring still yields events oldest-first.
    Cycle last = 0;
    rec.forEach([&](const obs::TraceEvent &ev) {
        EXPECT_GE(ev.cycle, last);
        last = ev.cycle;
    });
}

TEST(Observability, CategoryMaskFiltersAtRecordTime)
{
    const Program &prog = keep(buildWorkload("compress", 1));
    const CoreConfig cfg = makeConfig(4, 1, BusMode::WideBusSdv);

    obs::TraceRecorder all;
    all.configure(obs::CatAll, 0);
    {
        Simulator sim(cfg, prog);
        sim.setRecorder(&all);
        ASSERT_TRUE(sim.run(50'000'000, false).finished);
    }
    obs::TraceRecorder mem;
    mem.configure(obs::CatMem, 0);
    {
        Simulator sim(cfg, prog);
        sim.setRecorder(&mem);
        ASSERT_TRUE(sim.run(50'000'000, false).finished);
    }
    EXPECT_GT(mem.recorded(), 0u);
    EXPECT_LT(mem.recorded(), all.recorded());
    mem.forEach([](const obs::TraceEvent &ev) {
        EXPECT_EQ(obs::eventCategory(ev.kind), obs::CatMem);
    });
}

TEST(Observability, ParseCategoryMask)
{
    unsigned mask = 0;
    EXPECT_TRUE(obs::parseCategoryMask("sdv", mask));
    EXPECT_EQ(mask, obs::CatSdv);
    EXPECT_TRUE(obs::parseCategoryMask("sdv,mem,core", mask));
    EXPECT_EQ(mask, obs::CatAll);
    EXPECT_TRUE(obs::parseCategoryMask("all", mask));
    EXPECT_EQ(mask, obs::CatAll);
    EXPECT_FALSE(obs::parseCategoryMask("cache", mask));
    EXPECT_FALSE(obs::parseCategoryMask("", mask));
}

// --- trace serialization determinism ---------------------------------------

TEST(Observability, TraceFileIsDeterministicAcrossExecutorSchedules)
{
    sweep::PlanOptions popt;
    popt.quick = true;
    const sweep::SweepPlan plan = sweep::buildPlan("fig11", popt);

    auto run_with_jobs = [&](unsigned jobs) {
        sweep::ExecOptions opt;
        opt.jobs = jobs;
        opt.verify = false;
        opt.traceEvents = true;
        opt.telemetryInterval = 2048;
        return sweep::runPlan(plan, opt);
    };
    const auto serial = run_with_jobs(1);
    const auto parallel = run_with_jobs(3);
    ASSERT_EQ(serial.size(), plan.jobs.size());

    // Results (telemetry riders included) and the serialized trace
    // must be byte-identical regardless of worker scheduling.
    EXPECT_EQ(sweep::resultsJson(serial), sweep::resultsJson(parallel));
    const std::string ta =
        obs::traceFileJson(sweep::traceSources(serial));
    const std::string tb =
        obs::traceFileJson(sweep::traceSources(parallel));
    EXPECT_EQ(ta, tb);
    EXPECT_NE(ta.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(ta.find("\"chain_lifetime_hist\""), std::string::npos);
}

// --- interval telemetry exactness ------------------------------------------

TEST(Observability, TelemetrySumsEqualAggregatesExactly)
{
    for (const char *name : {"m88ksim", "swim"}) {
        SCOPED_TRACE(name);
        const Program &prog = keep(buildWorkload(name, 1));
        Simulator sim(makeConfig(4, 1, BusMode::WideBusSdv), prog);
        obs::IntervalTelemetry telemetry(1000);
        sim.setTelemetry(&telemetry);
        const SimResult r = sim.run(50'000'000, /*verify=*/false);
        ASSERT_TRUE(r.finished);

        const auto &samples = telemetry.samples();
        ASSERT_FALSE(samples.empty());

        // Samples tile [0, cycles] with no gaps or overlaps ...
        EXPECT_EQ(samples.front().startCycle, 0u);
        EXPECT_EQ(samples.back().endCycle, r.cycles);
        for (std::size_t i = 1; i < samples.size(); ++i)
            EXPECT_EQ(samples[i].startCycle, samples[i - 1].endCycle);

        // ... and the per-interval deltas sum to the aggregates.
        std::uint64_t insts = 0, cycles = 0, stalls = 0, val_waits = 0,
                      validations = 0, fallbacks = 0;
        for (const obs::TelemetrySample &s : samples) {
            insts += s.insts;
            cycles += s.cycles();
            stalls += s.fetchStallCycles;
            val_waits += s.fetchStallValWaitCycles;
            validations += s.validations;
            fallbacks += s.valFallbacks;
        }
        EXPECT_EQ(insts, r.insts);
        EXPECT_EQ(cycles, r.cycles);
        EXPECT_EQ(stalls, r.core.fetchStallCycles);
        EXPECT_EQ(val_waits, r.core.fetchStallValWaitCycles);
        EXPECT_EQ(validations, r.core.committedValidations);
        EXPECT_EQ(fallbacks, r.engine.lateValidationFallbacks);
    }
}

#endif // SDV_OBS_ENABLED

// --- histogram helpers -----------------------------------------------------

TEST(Histogram, QuantilesWalkTheCumulativeDistribution)
{
    Histogram h(8);
    EXPECT_EQ(h.quantile(0.5), -1); // empty

    h.sample(1, 10);
    h.sample(3, 30);
    h.sample(6, 60);
    EXPECT_EQ(h.quantile(0.0), 1);
    EXPECT_EQ(h.quantile(0.10), 1);
    EXPECT_EQ(h.quantile(0.25), 3);
    EXPECT_EQ(h.quantile(0.40), 3);
    EXPECT_EQ(h.quantile(0.41), 6);
    EXPECT_EQ(h.quantile(1.0), 6);

    h.sample(100);  // overflow bucket
    h.sample(-5);   // underflow bucket
    EXPECT_EQ(h.quantile(1.0), 8);  // numBuckets() == overflow
    EXPECT_EQ(h.quantile(0.0), -1); // underflow
    EXPECT_EQ(h.total(), 102u);
}

TEST(Histogram, JsonAndMergeUseTheSharedShape)
{
    Histogram h(3);
    h.sample(0, 2);
    h.sample(2, 1);
    h.sample(9, 4);
    EXPECT_EQ(h.toJson(),
              "{\"buckets\":[2, 0, 1],\"underflow\":0,\"overflow\":4,"
              "\"total\":7}");

    Histogram other(3);
    other.sample(1, 5);
    other.sample(-1, 3);
    h.merge(other);
    EXPECT_EQ(h.bucket(1), 5u);
    EXPECT_EQ(h.underflow(), 3u);
    EXPECT_EQ(h.total(), 15u);

    const std::uint64_t raw[4] = {1, 2, 3, 4};
    EXPECT_EQ(bucketArrayJson(raw, 4), "[1, 2, 3, 4]");
}

} // namespace
} // namespace sdv
