/**
 * @file
 * Service-grade fault-tolerance tests for the sweep work-server:
 * fair-share scheduling (no client starves, priorities weight
 * dispatch), the bounded snapshot cache (LRU eviction to a byte
 * budget, startup GC of stale-fingerprint entries), worker-hang
 * detection (silent workers are killed and their units retried with
 * byte-identical results), request deadlines (structured Deadline
 * verdicts, daemon unharmed), client verdict classification
 * (daemon-absent vs protocol-mismatch), the TL/shadow-GMRBB fault
 * sites under the divergence oracle, the delta-debugging repro
 * minimizer, and a small end-to-end chaos campaign.
 *
 * Server-spawning tests use the real sdv_sweep binary (SDV_SWEEP_BIN)
 * as the worker pool, exactly as production `--serve` does.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "sweep/chaos.hh"
#include "sweep/client.hh"
#include "sweep/executor.hh"
#include "sweep/fuzz.hh"
#include "sweep/plan.hh"
#include "sweep/proto.hh"
#include "sweep/server.hh"
#include "sweep/snapshot_cache.hh"
#include "workloads/workload.hh"

namespace sdv {
namespace {

/** One in-process daemon over a fresh temp directory, with the
 *  robustness knobs (hang timeout, cache budget) configurable. */
class ServerFixture
{
  public:
    explicit ServerFixture(unsigned workers, unsigned hangTimeoutMs = 0,
                           std::uint64_t cacheLimitMb = 0)
    {
        char tmpl[] = "/tmp/sdvrobXXXXXX";
        const char *dir = ::mkdtemp(tmpl);
        EXPECT_NE(dir, nullptr);
        dir_ = dir;
        sweep::SweepServer::Options opt;
        opt.socketPath = dir_ + "/sock";
        opt.cacheDir = dir_ + "/cache";
        opt.workerExe = SDV_SWEEP_BIN;
        opt.workers = workers;
        if (hangTimeoutMs)
            opt.hangTimeoutMs = hangTimeoutMs;
        opt.cacheLimitMb = cacheLimitMb;
        server_ = std::make_unique<sweep::SweepServer>(opt);
        std::string err;
        started_ = server_->start(&err);
        EXPECT_TRUE(started_) << err;
        if (started_)
            thread_ = std::thread([this] { server_->run(); });
    }

    ~ServerFixture()
    {
        if (started_) {
            server_->stop();
            thread_.join();
        }
        const std::string cmd = "rm -rf " + dir_;
        [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }

    std::string socketPath() const { return dir_ + "/sock"; }
    std::string cacheDir() const { return dir_ + "/cache"; }

  private:
    std::string dir_;
    std::unique_ptr<sweep::SweepServer> server_;
    std::thread thread_;
    bool started_ = false;
};

std::string
serialResults(const sweep::proto::SweepRequest &req)
{
    const sweep::SweepPlan plan = sweep::buildPlan(req.plan, req.popt);
    sweep::ExecOptions eopt = req.eopt;
    eopt.jobs = 1;
    return sweep::resultsJson(sweep::runPlan(plan, eopt, nullptr));
}

sweep::proto::SweepRequest
sampledRequest()
{
    sweep::proto::SweepRequest req;
    req.plan = "fig11";
    req.popt.quick = true;
    req.eopt.sample.samples = 3;
    req.eopt.sample.measureInsts = 2'000;
    req.eopt.warmupInsts = 5'000;
    return req;
}

long long
metricsField(const std::string &json, const std::string &key)
{
    const std::string needle = "\"" + key + "\": ";
    const std::size_t pos = json.find(needle);
    if (pos == std::string::npos)
        return -1;
    return std::atoll(json.c_str() + pos + needle.size());
}

/** Sum of regular-file sizes directly inside @p dir. */
std::uint64_t
dirBytes(const std::string &dir)
{
    std::uint64_t total = 0;
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return 0;
    while (struct dirent *e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name == "." || name == "..")
            continue;
        struct stat st{};
        if (::stat((dir + "/" + name).c_str(), &st) == 0 &&
            S_ISREG(st.st_mode))
            total += std::uint64_t(st.st_size);
    }
    ::closedir(d);
    return total;
}

std::shared_ptr<sweep::PendingUnit>
makeUnit(std::uint64_t clientId, std::uint32_t priority,
         std::uint64_t id)
{
    auto u = std::make_shared<sweep::PendingUnit>();
    u->clientId = clientId;
    u->priority = priority;
    u->msg.id = id;
    u->done = [](sweep::proto::UnitResult &&) {};
    return u;
}

TEST(FairShareQueue, SmallClientIsNotStarvedByBatchFlood)
{
    sweep::FairShareQueue q;
    // A batch client floods 50 units, then an interactive client adds
    // 3. FIFO would serve the interactive units at positions 51-53;
    // fair-share must interleave them near the front.
    for (std::uint64_t i = 0; i < 50; ++i)
        q.push(makeUnit(/*client=*/1, 1, i), false);
    for (std::uint64_t i = 0; i < 3; ++i)
        q.push(makeUnit(/*client=*/2, 1, 100 + i), false);

    unsigned lastInteractivePop = 0;
    for (unsigned pop = 1; !q.empty(); ++pop) {
        const auto u = q.pop();
        ASSERT_NE(u, nullptr);
        if (u->clientId == 2)
            lastInteractivePop = pop;
    }
    // Equal priorities alternate, so the third interactive unit is
    // dispatched by the ~6th pop — bounded regardless of queue depth.
    EXPECT_LE(lastInteractivePop, 7u);
}

TEST(FairShareQueue, PriorityWeightsDispatchProportionally)
{
    sweep::FairShareQueue q;
    for (std::uint64_t i = 0; i < 30; ++i)
        q.push(makeUnit(/*client=*/1, /*priority=*/3, i), false);
    for (std::uint64_t i = 0; i < 30; ++i)
        q.push(makeUnit(/*client=*/2, /*priority=*/1, 100 + i), false);

    // Every full rotation is 3 units of client 1 + 1 of client 2, so
    // the first 12 pops split exactly 9 / 3.
    unsigned fromHigh = 0;
    for (unsigned pop = 0; pop < 12; ++pop) {
        const auto u = q.pop();
        ASSERT_NE(u, nullptr);
        if (u->clientId == 1)
            ++fromHigh;
    }
    EXPECT_EQ(9u, fromHigh);
    EXPECT_EQ(48u, q.size());

    // Crash-retries go to the *front* of their client's bucket.
    auto retry = makeUnit(/*client=*/2, 1, 999);
    q.push(retry, true);
    while (!q.empty()) {
        const auto u = q.pop();
        if (u->clientId == 2) {
            EXPECT_EQ(999u, u->msg.id);
            break;
        }
    }
    const auto rest = q.drain();
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(rest.empty());
}

TEST(SnapshotCacheUnit, EvictsLeastRecentlyUsedToByteBudget)
{
    char tmpl[] = "/tmp/sdvlruXXXXXX";
    const char *dir = ::mkdtemp(tmpl);
    ASSERT_NE(dir, nullptr);

    // Each container is ~10 KB; a 25 KB budget holds two.
    const auto capture = [](const std::string &path, std::string *) {
        sweep::SnapshotSet s;
        s.captured = true;
        s.set.samples.resize(1);
        s.set.samples[0].bytes.assign(10'000, 0x5a);
        return sweep::saveSnapshotSet(path, s);
    };
    sweep::SnapshotCache cache(dir, 25'000);

    std::string err;
    sweep::SnapshotCache::Outcome out;
    ASSERT_NE(nullptr, cache.acquire("k1.b0000000000000001", capture,
                                     &err, &out));
    ASSERT_NE(nullptr, cache.acquire("k2.b0000000000000001", capture,
                                     &err, &out));
    ASSERT_NE(nullptr, cache.acquire("k3.b0000000000000001", capture,
                                     &err, &out));

    // Publishing k3 overflowed the budget: k1 (least recently used)
    // must be gone — from disk *and* from memory.
    EXPECT_GE(cache.stats().evictions, 1u);
    EXPECT_LE(cache.diskBytes(), 25'000u);
    EXPECT_LE(dirBytes(dir), 25'000u);

    ASSERT_NE(nullptr, cache.acquire("k2.b0000000000000001", capture,
                                     &err, &out));
    EXPECT_EQ(sweep::SnapshotCache::Outcome::Hit, out);
    ASSERT_NE(nullptr, cache.acquire("k1.b0000000000000001", capture,
                                     &err, &out));
    EXPECT_EQ(sweep::SnapshotCache::Outcome::Miss, out)
        << "an evicted key must re-capture, not hit a dead entry";

    const std::string cleanup = "rm -rf " + std::string(dir);
    [[maybe_unused]] const int rc = std::system(cleanup.c_str());
}

TEST(SnapshotCacheUnit, StartupGcRemovesStaleFingerprints)
{
    char tmpl[] = "/tmp/sdvgcXXXXXX";
    const char *dir = ::mkdtemp(tmpl);
    ASSERT_NE(dir, nullptr);

    const auto capture = [](const std::string &path, std::string *) {
        sweep::SnapshotSet s;
        s.captured = false;
        s.set.samples.resize(1);
        return sweep::saveSnapshotSet(path, s);
    };
    const std::string fresh = "w1.b00000000000000aa";
    const std::string stale = "w2.b00000000000000bb";
    std::string err;
    {
        sweep::SnapshotCache writer(dir);
        ASSERT_NE(nullptr, writer.acquire(fresh, capture, &err));
        ASSERT_NE(nullptr, writer.acquire(stale, capture, &err));
    }

    // A restarted daemon (new fingerprint 0xaa) must GC the 0xbb
    // entry: stale-but-present snapshots must never be served.
    sweep::SnapshotCache reborn(dir);
    EXPECT_EQ(1u, reborn.gcStale(0xaa));
    EXPECT_EQ(0, ::access(reborn.pathFor(fresh).c_str(), F_OK));
    EXPECT_NE(0, ::access(reborn.pathFor(stale).c_str(), F_OK));
    EXPECT_EQ(1u, reborn.stats().gcRemoved);

    const std::string cleanup = "rm -rf " + std::string(dir);
    [[maybe_unused]] const int rc = std::system(cleanup.c_str());
}

TEST(SweepServerRobustness, HungWorkerIsKilledAndUnitRetried)
{
    ServerFixture srv(2, /*hangTimeoutMs=*/400);
    sweep::proto::SweepRequest req = sampledRequest();
    req.chaos.hangUnits = 1; // one unit's worker goes silent mid-hold

    sweep::ClientResult res;
    std::string err;
    ASSERT_TRUE(sweep::submitSweep(srv.socketPath(), req, res, &err))
        << err;
    EXPECT_EQ(serialResults(req), res.resultsArray());
    EXPECT_GE(metricsField(res.metricsJson, "hang_kills"), 1);
    EXPECT_GE(metricsField(res.metricsJson, "unit_retries"), 1);
    EXPECT_GE(metricsField(res.metricsJson, "worker_restarts"), 1);
}

TEST(SweepServerRobustness, DeadlineExpiryIsStructuredAndNonFatal)
{
    ServerFixture srv(1);
    sweep::proto::SweepRequest doomed = sampledRequest();
    doomed.deadlineMs = 1;

    sweep::ClientResult res;
    std::string err;
    const sweep::SubmitStatus st = sweep::submitSweepOnce(
        srv.socketPath(), doomed, 1, res, &err);
    EXPECT_EQ(sweep::SubmitStatus::DeadlineExpired, st)
        << sweep::submitStatusName(st) << ": " << err;
    EXPECT_NE(err.find("deadline"), std::string::npos) << err;

    // The daemon is unharmed and still serves correctly.
    const sweep::proto::SweepRequest good = sampledRequest();
    ASSERT_TRUE(sweep::submitSweep(srv.socketPath(), good, res, &err))
        << err;
    EXPECT_EQ(serialResults(good), res.resultsArray());
}

TEST(SweepServerRobustness, AbsentAndMismatchedDaemonsAreDistinct)
{
    // Nothing listening: the retryable, fallback-friendly verdict.
    sweep::ClientResult res;
    std::string err;
    EXPECT_EQ(sweep::SubmitStatus::DaemonAbsent,
              sweep::submitSweepOnce("/tmp/sdv_no_such_daemon.sock",
                                     sampledRequest(), 1, res, &err));

    // A live daemon speaking another protocol version: a hard error
    // that quotes the server's version.
    ServerFixture srv(1);
    const int fd = sweep::proto::connectUnix(srv.socketPath(), &err);
    ASSERT_GE(fd, 0) << err;
    sweep::proto::Framed link(fd);
    sweep::proto::Hello hello;
    hello.version = 99;
    hello.pid = ::getpid();
    ASSERT_TRUE(link.send(sweep::proto::MsgType::HelloClient,
                          hello.encode()));
    sweep::proto::MsgType t;
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(link.recv(t, payload));
    ASSERT_EQ(sweep::proto::MsgType::Error, t);
    sweep::proto::ErrorMsg e;
    ASSERT_TRUE(sweep::proto::ErrorMsg::decode(payload, e));
    EXPECT_EQ(sweep::proto::ErrKind::Protocol, e.kind);
    EXPECT_NE(e.message.find("version"), std::string::npos);
}

TEST(SweepServerRobustness, CacheDirectoryRespectsByteBudget)
{
    // 2 MB budget; each sampled fig11 capture container is ~1.2 MB,
    // so one request's three captures (~3.8 MB) already overflow it.
    // A running request pins its own snapshots (eviction must never
    // unlink a file under active workers), so the budget is enforced
    // at publish against *other* requests' entries and again when the
    // pins drop.
    ServerFixture srv(2, /*hangTimeoutMs=*/0, /*cacheLimitMb=*/2);
    sweep::ClientResult res;
    std::string err;

    sweep::proto::SweepRequest a = sampledRequest();
    ASSERT_TRUE(sweep::submitSweep(srv.socketPath(), a, res, &err))
        << err;
    sweep::proto::SweepRequest b = sampledRequest();
    b.eopt.warmupInsts = 6'000; // different capture key set
    ASSERT_TRUE(sweep::submitSweep(srv.socketPath(), b, res, &err))
        << err;

    // Publishing b's captures had to evict a's unpinned ones.
    EXPECT_GE(metricsField(res.metricsJson, "cache_evictions"), 1);

    // b's own pins release just after the stream ends; poll briefly
    // for the final shrink back under the byte budget.
    std::uint64_t bytes = 0;
    for (int i = 0; i < 100; ++i) {
        bytes = dirBytes(srv.cacheDir());
        if (bytes <= (2u << 20))
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    EXPECT_LE(bytes, 2u << 20)
        << "snapshot cache exceeded --cache-limit-mb after requests";
}

TEST(FaultInjection, TlAndGmrbbFlipsAreInjectedAndContained)
{
    // High ppm so both new fault sites demonstrably fire; the
    // divergence oracle plus the escape accounting then prove the
    // corruption is contained: TL faults can only mislead *future*
    // spawns (caught by the expected-address check) and shadow-GMRBB
    // flips only mislabel release regions — neither may ever corrupt
    // architectural state.
    const auto &workloads = allWorkloads();
    ASSERT_FALSE(workloads.empty());
    sweep::FuzzCase c;
    c.workload = workloads.front().name;
    c.fault.enabled = true;
    c.fault.seed = 0x7ab;
    c.fault.tlFlipPpm = 50'000;
    c.fault.gmrbbFlipPpm = 50'000;

    const sweep::FuzzOutcome o =
        sweep::runFuzzCase(c, /*event_skip=*/true, 50'000'000);
    EXPECT_GT(o.tlFlips, 0u);
    EXPECT_GT(o.gmrbbFlips, 0u);
    EXPECT_FALSE(o.diverged) << o.reason;
}

TEST(FuzzMinimizer, DeltaDebugEscapesCoupledKnobTrap)
{
    // Synthetic failure coupled across two knobs: it reproduces iff
    // (quiesce != 0) == eager — i.e. with both perturbed or neither.
    // Greedy single resets are stuck (either lone reset breaks the
    // equality); the pair reset minimizes fully.
    sweep::FuzzCase c;
    c.workload = "synthetic";
    c.quiesceInterval = 500;
    c.eagerChain = true;
    const sweep::FuzzPredicate diverges =
        [](const sweep::FuzzCase &t) {
            return (t.quiesceInterval != 0) == t.eagerChain;
        };
    ASSERT_TRUE(diverges(c));

    const sweep::FuzzCase greedy =
        sweep::minimizeFuzzCaseGreedy(c, diverges);
    EXPECT_EQ(500u, greedy.quiesceInterval);
    EXPECT_TRUE(greedy.eagerChain);

    const sweep::FuzzCase minimized = sweep::minimizeFuzzCase(c, diverges);
    EXPECT_TRUE(diverges(minimized))
        << "the minimized case must still reproduce";
    EXPECT_EQ(0u, minimized.quiesceInterval);
    EXPECT_FALSE(minimized.eagerChain);

    // Never larger than greedy: count perturbed knobs.
    const auto perturbed = [](const sweep::FuzzCase &t) {
        return int(t.quiesceInterval != 0) + int(t.eagerChain) +
               int(t.fault.enabled) + int(t.vlen != 4) +
               int(t.numVregs != 128) + int(t.ports != 1) +
               int(t.tlConfidence != 2) + int(t.fuzzSeed != 0);
    };
    EXPECT_LE(perturbed(minimized), perturbed(greedy));
}

TEST(ChaosCampaign, SurvivesInjectedFaultsWithExactAccounting)
{
    ServerFixture srv(2, /*hangTimeoutMs=*/500);
    sweep::ChaosOptions copt;
    copt.requests = 3;
    copt.seed = 42;
    copt.workerExits = 1;
    copt.workerHangs = 1;
    copt.corruptFrames = 1;
    copt.truncFrames = 1;
    copt.delayedUnits = 1;
    copt.dribbledUnits = 1;
    copt.clientDisconnects = 1;
    copt.badFrameProbes = 2;
    copt.deadlineVictims = 1;
    copt.delayMs = 150;

    const sweep::ChaosReport rep = sweep::runChaosCampaign(
        srv.socketPath(), sampledRequest(), copt);
    EXPECT_TRUE(rep.recordsMatch) << rep.summary();
    EXPECT_TRUE(rep.errorsStructured) << rep.summary();
    EXPECT_TRUE(rep.accountingBalanced) << rep.summary();
    EXPECT_TRUE(rep.daemonAlive) << rep.summary();
    EXPECT_EQ(3u, rep.requestsOk);
    EXPECT_EQ(1u, rep.deadlineErrors);
}

} // namespace
} // namespace sdv
