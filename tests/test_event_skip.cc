/**
 * @file
 * Equivalence tests of the event-skipping simulation clock: for every
 * tier-1 workload, an event-skipping run and a ticking reference run
 * must produce bit-identical statistics and committed-stream hashes.
 * Also covers the decoded-program cache (invalidation on patch) and
 * the Figure-13 ledger folding memory bound.
 */

#include <deque>

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace sdv {
namespace {

std::deque<Program> &
keeper()
{
    static std::deque<Program> progs;
    return progs;
}

const Program &
keep(Program &&p)
{
    keeper().push_back(std::move(p));
    return keeper().back();
}

/** Every stat both runs must agree on, in one comparable bundle. */
struct RunDigest
{
    SimResult res;
    std::uint64_t commitHash = 0;
};

RunDigest
runOnce(CoreConfig cfg, const Program &prog, bool event_skip, bool verify)
{
    cfg.eventSkip = event_skip;
    Simulator sim(cfg, prog);
    RunDigest d;
    d.res = sim.run(50'000'000, verify);
    d.commitHash = sim.core().commitPcHash();
    return d;
}

/** Assert full equality of the stats the figures are built from. The
 *  event-skip meta-counters (eventSkipJumps / eventSkippedCycles) are
 *  deliberately excluded: they describe how the cycles were simulated,
 *  and are the only fields allowed to differ. */
void
expectIdentical(const RunDigest &skip, const RunDigest &ref,
                const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(skip.res.finished, ref.res.finished);
    EXPECT_EQ(skip.res.cycles, ref.res.cycles);
    EXPECT_EQ(skip.res.insts, ref.res.insts);
    EXPECT_DOUBLE_EQ(skip.res.ipc, ref.res.ipc);
    EXPECT_EQ(skip.commitHash, ref.commitHash);

    const CoreStats &a = skip.res.core;
    const CoreStats &b = ref.res.core;
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committedInsts, b.committedInsts);
    EXPECT_EQ(a.committedLoads, b.committedLoads);
    EXPECT_EQ(a.committedStores, b.committedStores);
    EXPECT_EQ(a.committedBranches, b.committedBranches);
    EXPECT_EQ(a.committedValidations, b.committedValidations);
    EXPECT_EQ(a.committedLoadValidations, b.committedLoadValidations);
    EXPECT_EQ(a.scalarLoadAccesses, b.scalarLoadAccesses);
    EXPECT_EQ(a.loadForwards, b.loadForwards);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.fetchStallCycles, b.fetchStallCycles);
    EXPECT_EQ(a.fetchStallValWaitCycles, b.fetchStallValWaitCycles);
    EXPECT_EQ(a.decodeBlockCycles, b.decodeBlockCycles);
    EXPECT_EQ(a.robFullStalls, b.robFullStalls);
    EXPECT_EQ(a.lsqFullStalls, b.lsqFullStalls);
    EXPECT_EQ(a.storeConflictSquashes, b.storeConflictSquashes);
    EXPECT_EQ(a.squashedInsts, b.squashedInsts);
    // Figure 10.
    EXPECT_EQ(a.postMispredictWindowInsts, b.postMispredictWindowInsts);
    EXPECT_EQ(a.postMispredictReused, b.postMispredictReused);

    // Figure 13 and the port statistics feeding Figure 12.
    EXPECT_EQ(skip.res.ports.cycles, ref.res.ports.cycles);
    EXPECT_EQ(skip.res.ports.busyPortCycles, ref.res.ports.busyPortCycles);
    EXPECT_EQ(skip.res.ports.readAccesses, ref.res.ports.readAccesses);
    EXPECT_EQ(skip.res.ports.writeAccesses, ref.res.ports.writeAccesses);
    EXPECT_EQ(skip.res.ports.wordsServed, ref.res.ports.wordsServed);
    EXPECT_EQ(skip.res.wideBus.totalReads, ref.res.wideBus.totalReads);
    for (unsigned n = 0; n <= 4; ++n)
        EXPECT_EQ(skip.res.wideBus.usefulWords[n],
                  ref.res.wideBus.usefulWords[n]);

    // Engine / datapath / register-fate (Figures 9, 14, 15).
    EXPECT_EQ(skip.res.engine.loadSpawns, ref.res.engine.loadSpawns);
    EXPECT_EQ(skip.res.engine.loadValidations,
              ref.res.engine.loadValidations);
    EXPECT_EQ(skip.res.engine.arithValidations,
              ref.res.engine.arithValidations);
    EXPECT_EQ(skip.res.engine.storeRangeConflicts,
              ref.res.engine.storeRangeConflicts);
    EXPECT_EQ(skip.res.engine.lateValidationFallbacks,
              ref.res.engine.lateValidationFallbacks);
    EXPECT_EQ(skip.res.engine.validationValueMismatches, 0u);
    EXPECT_EQ(skip.res.datapath.elemsComputed, ref.res.datapath.elemsComputed);
    EXPECT_EQ(skip.res.datapath.elemLoadAccessesIssued,
              ref.res.datapath.elemLoadAccessesIssued);
    EXPECT_EQ(skip.res.fates.regsReleased, ref.res.fates.regsReleased);
    EXPECT_EQ(skip.res.fates.elemsComputedUsed,
              ref.res.fates.elemsComputedUsed);
    EXPECT_EQ(skip.res.fates.lifetimeCycles,
              ref.res.fates.lifetimeCycles);
    EXPECT_EQ(skip.res.fates.releasedCond1, ref.res.fates.releasedCond1);
    EXPECT_EQ(skip.res.fates.releasedCond2, ref.res.fates.releasedCond2);
    EXPECT_EQ(skip.res.fates.releasedKilled,
              ref.res.fates.releasedKilled);

    // Cache hierarchy.
    EXPECT_EQ(skip.res.l1d.accesses(), ref.res.l1d.accesses());
    EXPECT_EQ(skip.res.l1d.misses(), ref.res.l1d.misses());
    EXPECT_EQ(skip.res.l1i.accesses(), ref.res.l1i.accesses());
    EXPECT_EQ(skip.res.l1i.misses(), ref.res.l1i.misses());
    EXPECT_EQ(skip.res.l2.accesses(), ref.res.l2.accesses());
    EXPECT_EQ(skip.res.l2.misses(), ref.res.l2.misses());

    // The reference must not have skipped anything.
    EXPECT_EQ(b.eventSkippedCycles, 0u);
    EXPECT_EQ(b.eventSkipJumps, 0u);
}

TEST(EventSkip, BitIdenticalOnEveryTier1Workload)
{
    std::uint64_t total_skipped = 0;
    for (const Workload &w : allWorkloads()) {
        const Program &prog = keep(w.instantiate(1));
        for (BusMode mode : {BusMode::WideBusSdv, BusMode::ScalarBus}) {
            const CoreConfig cfg = makeConfig(4, 1, mode);
            // Verification (functional re-execution + state compare)
            // on the vectorized config, where divergence would bite.
            const bool verify = mode == BusMode::WideBusSdv;
            const RunDigest skip = runOnce(cfg, prog, true, verify);
            const RunDigest ref = runOnce(cfg, prog, false, verify);
            ASSERT_TRUE(ref.res.finished);
            if (verify) {
                EXPECT_TRUE(skip.res.verified);
                EXPECT_TRUE(ref.res.verified);
            }
            expectIdentical(
                skip, ref,
                w.name + "/" +
                    (mode == BusMode::WideBusSdv ? "xpV" : "noIM"));
            total_skipped += skip.res.core.eventSkippedCycles;
        }
    }
    // The clock must actually be jumping somewhere in the suite,
    // otherwise this test degenerates into ticking twice.
    EXPECT_GT(total_skipped, 0u);
}

TEST(EventSkip, BlockedDecodeWindowsSkipAndStayBitIdentical)
{
    // PR 3: a decode blocked on an in-flight captured-scalar producer
    // (Figure 7) is modelled as an event horizon instead of vetoing
    // the jump. The suite must (a) actually exercise blocked-decode
    // cycles, (b) keep skipping somewhere, and (c) stay bit-identical
    // to the ticking reference — including the decodeBlockCycles /
    // decodeBlockEvents charges the jump now replays.
    std::uint64_t total_blocked = 0;
    std::uint64_t total_skipped = 0;
    for (const Workload &w : allWorkloads()) {
        const Program &prog = keep(w.instantiate(1));
        CoreConfig cfg = makeConfig(4, 1, BusMode::WideBusSdv);
        cfg.engine.blockOnScalarOperand = true;
        const RunDigest skip = runOnce(cfg, prog, true, false);
        const RunDigest ref = runOnce(cfg, prog, false, false);
        ASSERT_TRUE(ref.res.finished);
        expectIdentical(skip, ref, w.name + "/blocking");
        EXPECT_EQ(skip.res.engine.decodeBlockEvents,
                  ref.res.engine.decodeBlockEvents)
            << w.name;
        total_blocked += ref.res.core.decodeBlockCycles;
        total_skipped += skip.res.core.eventSkippedCycles;
    }
    // Without blocked cycles this test would not cover the new path;
    // without skips it would not cover the clock at all.
    EXPECT_GT(total_blocked, 0u);
    EXPECT_GT(total_skipped, 0u);
}

TEST(EventSkip, BudgetLimitedRunMatchesTickingExactly)
{
    // Cut a run off mid-flight: the skipping clock must clip its jumps
    // at the budget and report the same final cycle and stats.
    const Program &prog = keep(buildWorkload("compress", 1));
    const CoreConfig cfg = makeConfig(4, 1, BusMode::WideBusSdv);
    for (std::uint64_t budget : {500ULL, 5'000ULL, 20'000ULL}) {
        CoreConfig c = cfg;
        c.eventSkip = true;
        Simulator a(c, prog);
        const SimResult ra = a.run(budget, /*verify=*/false);
        c.eventSkip = false;
        Simulator b(c, prog);
        const SimResult rb = b.run(budget, /*verify=*/false);
        EXPECT_EQ(ra.finished, rb.finished) << budget;
        EXPECT_EQ(ra.cycles, rb.cycles) << budget;
        EXPECT_EQ(ra.insts, rb.insts) << budget;
        EXPECT_EQ(ra.ports.cycles, rb.ports.cycles) << budget;
        EXPECT_EQ(a.core().commitPcHash(), b.core().commitPcHash())
            << budget;
    }
}

// --- decoded-program cache -------------------------------------------------

TEST(DecodedCache, InstAtReflectsPatch)
{
    Program p;
    const Addr pc0 =
        p.append(Instruction(Opcode::ADD, 1, 2, 3, 0));
    const Addr pc1 =
        p.append(Instruction(Opcode::LDQ, 4, 5, 0, 16));
    p.append(Instruction(Opcode::HALT, 0, 0, 0, 0));

    // Prime the decode cache.
    EXPECT_EQ(p.instAt(pc0).op, Opcode::ADD);
    EXPECT_EQ(p.instAt(pc1).op, Opcode::LDQ);
    EXPECT_EQ(p.instAt(pc1).imm, 16);

    // Patch slot 1 (the builder's label-fixup path) and re-read: the
    // cached decode must be invalidated, not returned stale.
    p.patch(1, Instruction(Opcode::LDQ, 4, 5, 0, 64));
    EXPECT_EQ(p.instAt(pc1).imm, 64);
    p.patch(1, Instruction(Opcode::SUB, 7, 8, 9, 0));
    EXPECT_EQ(p.instAt(pc1).op, Opcode::SUB);
    EXPECT_EQ(p.instAt(pc1).rd, 7);

    // Unpatched slots keep their cached decode.
    EXPECT_EQ(p.instAt(pc0).op, Opcode::ADD);
    EXPECT_EQ(p.instAt(pc0).rs2, 3);
}

TEST(DecodedCache, RepeatedAccessIsStable)
{
    Program p;
    const Addr pc = p.append(Instruction(Opcode::ADDI, 3, 3, 0, -7));
    p.append(Instruction(Opcode::HALT, 0, 0, 0, 0));
    const Instruction &first = p.instAt(pc);
    const Instruction &second = p.instAt(pc);
    // Same cached slot, same contents.
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(first.imm, -7);
    EXPECT_EQ(p.encodedAt(pc), first.encode());
}

// --- Figure-13 ledger folding ---------------------------------------------

TEST(LedgerFolding, MemoryBoundedByInFlightAccesses)
{
    // A full workload makes tens of thousands of port accesses; after
    // folding, the ledger slot pool must stay bounded by what can be
    // simultaneously unresolved, not grow with traffic.
    const Program &prog = keep(buildWorkload("swim", 1));
    const CoreConfig cfg = makeConfig(4, 1, BusMode::WideBusSdv);
    Simulator sim(cfg, prog);
    const SimResult res = sim.run(50'000'000, /*verify=*/false);
    ASSERT_TRUE(res.finished);

    DCachePorts &ports = sim.core().ports();
    EXPECT_GT(res.ports.readAccesses, 5'000u);
    EXPECT_EQ(res.wideBus.totalReads, res.ports.readAccesses);
    // Unresolved records are bounded by in-flight speculative elements
    // (vector registers * vlen), far below total traffic.
    EXPECT_LT(ports.ledgerSlotHighWater(),
              std::size_t(cfg.engine.numVregs * cfg.engine.vlen * 2));
    // After finalize() (run() calls it), every element is resolved and
    // only the final cycle's accesses may still be live.
    EXPECT_LE(ports.ledgerLiveRecords(), std::size_t(cfg.dcachePorts));
}

} // namespace
} // namespace sdv
