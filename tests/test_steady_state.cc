/**
 * @file
 * Steady-state parity tests (PR 5): the never-quiesced SDV engine vs
 * the same machine context-switched at boundaries.
 *
 * Root cause of the historical 10-18% continuous-vs-post-boundary gap
 * on m88ksim/perl (docs/performance.md, "Steady-state behavior"):
 * cache-line phase alignment of the speculative load chain. A load
 * chain advances in lockstep vlen*stride-byte steps forever, so the
 * alignment of its incarnation bases relative to the L1 line is fixed
 * at chain establishment. With the paper's last-element chaining, an
 * unluckily aligned chain issues each new line's first element only
 * one loop iteration before the validation that consumes it, exposing
 * the miss latency on the dependent dispatch branch every other
 * incarnation. A quiesce re-establishes the chain at a fresh
 * alignment — usually, but not always, a lucky one.
 *
 * These tests pin (a) the documented bound on the default
 * (paper-faithful) configuration's gap, (b) that --eager-chain
 * (EngineConfig::eagerChainLoads) eliminates it (<= 2%), (c) the
 * fetch-stall attribution counter that identifies the mechanism, and
 * (d) bit-identity of the event-skipping clock under the new modes.
 */

#include <deque>

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace sdv {
namespace {

std::deque<Program> &
keeper()
{
    static std::deque<Program> progs;
    return progs;
}

const Program &
keep(Program &&p)
{
    p.predecodeAll();
    keeper().push_back(std::move(p));
    return keeper().back();
}

struct GapResult
{
    SimResult cont;     ///< continuous (never quiesced)
    SimResult quiesced; ///< vector state dropped every 10k insts

    /** Continuous slowdown relative to the quiesced run. */
    double
    gap() const
    {
        return double(cont.cycles) / double(quiesced.cycles) - 1.0;
    }
};

GapResult
measureGap(const std::string &workload, bool eager_chain)
{
    const Program &prog = keep(buildWorkload(workload, 1, Footprint::L2));
    CoreConfig cfg = makeConfig(4, 1, BusMode::WideBusSdv);
    cfg.engine.eagerChainLoads = eager_chain;

    GapResult r;
    {
        Simulator sim(cfg, prog);
        r.cont = sim.run(200'000'000, /*verify=*/true);
    }
    {
        Simulator sim(cfg, prog);
        r.quiesced =
            sim.run(200'000'000, /*verify=*/true, /*quiesce=*/10'000);
    }
    EXPECT_TRUE(r.cont.finished && r.cont.verified) << workload;
    EXPECT_TRUE(r.quiesced.finished && r.quiesced.verified) << workload;
    EXPECT_EQ(r.cont.engine.validationValueMismatches, 0u) << workload;
    EXPECT_EQ(r.quiesced.engine.validationValueMismatches, 0u)
        << workload;
    return r;
}

TEST(SteadyState, DefaultConfigGapStaysWithinDocumentedBound)
{
    // The paper-faithful configuration (last-element chaining) keeps
    // an alignment-dependent gap; the documented bound is 25%, and the
    // quiesced run must never be dramatically *slower* either.
    for (const std::string w : {"m88ksim", "perl"}) {
        const GapResult r = measureGap(w, /*eager=*/false);
        EXPECT_LE(r.gap(), 0.25) << w << " gap " << r.gap();
        EXPECT_GE(r.gap(), -0.05) << w << " gap " << r.gap();
    }
}

TEST(SteadyState, EagerChainClosesTheGapToTwoPercent)
{
    // With eager load chaining the element loads lead their consumers
    // by a full incarnation regardless of line alignment: continuous
    // runs are as fast as post-boundary runs (the ISSUE 5 acceptance
    // bound).
    for (const std::string w : {"m88ksim", "perl"}) {
        const GapResult r = measureGap(w, /*eager=*/true);
        EXPECT_LE(double(r.cont.cycles),
                  double(r.quiesced.cycles) * 1.02)
            << w << " gap " << r.gap();
        // And it beats the default configuration outright, not just
        // relative to its own quiesced twin.
        const GapResult d = measureGap(w, /*eager=*/false);
        EXPECT_LT(r.cont.cycles, d.cont.cycles) << w;
    }
}

TEST(SteadyState, FetchStallAttributionIdentifiesValidationWaits)
{
    // The instrumentation that located the root cause: in the default
    // configuration the majority of m88ksim's continuous fetch-stall
    // cycles wait on a validation (fetch serialized behind vector
    // element computation); eager chaining removes exactly that
    // component.
    const GapResult def = measureGap("m88ksim", /*eager=*/false);
    ASSERT_GT(def.cont.core.fetchStallCycles, 0u);
    const double frac =
        double(def.cont.core.fetchStallValWaitCycles) /
        double(def.cont.core.fetchStallCycles);
    EXPECT_GT(frac, 0.40) << "validation-wait fraction " << frac;

    const GapResult eager = measureGap("m88ksim", /*eager=*/true);
    EXPECT_LT(eager.cont.core.fetchStallValWaitCycles,
              def.cont.core.fetchStallValWaitCycles / 4);
    EXPECT_LT(eager.cont.core.fetchStallCycles,
              def.cont.core.fetchStallCycles);
}

TEST(SteadyState, NewModesStayBitIdenticalUnderEventSkipping)
{
    // The event-skipping clock must reproduce ticking exactly through
    // the new paths: eager chains, periodic vector quiesces, and the
    // parked-validation scheduler on a memory-bound footprint.
    for (const std::string w : {"m88ksim", "perl"}) {
        const Program &prog = keep(buildWorkload(w, 1, Footprint::L2));
        for (const bool eager : {false, true}) {
            for (const std::uint64_t qi : {0ULL, 10'000ULL}) {
                CoreConfig cfg = makeConfig(4, 1, BusMode::WideBusSdv);
                cfg.engine.eagerChainLoads = eager;

                cfg.eventSkip = true;
                Simulator a(cfg, prog);
                const SimResult ra = a.run(200'000'000, false, qi);

                cfg.eventSkip = false;
                Simulator b(cfg, prog);
                const SimResult rb = b.run(200'000'000, false, qi);

                SCOPED_TRACE(w + (eager ? "/eager" : "/default") +
                             (qi ? "/quiesced" : "/continuous"));
                EXPECT_EQ(ra.cycles, rb.cycles);
                EXPECT_EQ(ra.insts, rb.insts);
                EXPECT_EQ(ra.core.fetchStallCycles,
                          rb.core.fetchStallCycles);
                EXPECT_EQ(ra.core.fetchStallValWaitCycles,
                          rb.core.fetchStallValWaitCycles);
                EXPECT_EQ(ra.core.committedValidations,
                          rb.core.committedValidations);
                EXPECT_EQ(ra.fates.regsReleased, rb.fates.regsReleased);
                EXPECT_EQ(ra.fates.lifetimeCycles,
                          rb.fates.lifetimeCycles);
                EXPECT_EQ(a.core().commitPcHash(),
                          b.core().commitPcHash());
                EXPECT_EQ(rb.core.eventSkippedCycles, 0u);
            }
        }
    }
}

TEST(SteadyState, QuiesceIntervalPreservesArchitecturalResults)
{
    // Periodic vector quiesces change timing only: the committed
    // stream and final state still verify, and the committed counts
    // match the continuous run.
    for (const std::string w : {"compress", "go"}) {
        const Program &prog = keep(buildWorkload(w, 1, Footprint::Base));
        const CoreConfig cfg = makeConfig(4, 1, BusMode::WideBusSdv);
        Simulator cont(cfg, prog);
        const SimResult rc = cont.run(200'000'000, true);
        Simulator qui(cfg, prog);
        const SimResult rq = qui.run(200'000'000, true, 5'000);
        EXPECT_TRUE(rc.verified && rq.verified) << w;
        EXPECT_EQ(rc.insts, rq.insts) << w;
        EXPECT_EQ(cont.core().commitPcHash(), qui.core().commitPcHash())
            << w;
        // The quiesced machine really did drop vector state: it
        // releases more (shorter-lived) registers.
        EXPECT_GE(rq.fates.regsReleased, rc.fates.regsReleased) << w;
    }
}

} // namespace
} // namespace sdv
