/**
 * @file
 * Figure 11 (the headline figure): IPC for the 8-way and 4-way
 * processors with 1, 2 and 4 L1D ports, each scalar (xpnoIM), wide
 * (xpIM) or wide + dynamic vectorization (xpV).
 *
 * The grid itself lives in the sweep plan registry ("fig11") and runs
 * through the sweep executor: --jobs N parallelizes it and
 * --checkpoint forks every configuration from a warmed snapshot, both
 * without changing a single reported statistic (per-run results are
 * scheduling-independent).
 */

#include <cstdio>

#include "harness.hh"

using namespace sdv;

int
main(int argc, char **argv)
{
    const auto opt = bench::parseArgs(argc, argv,
                                      /*json_supported=*/true);
    bench::banner("Figure 11 - IPC by port count, bus width and "
                  "dynamic vectorization",
                  "a 4-way processor with one wide bus + SDV beats the "
                  "same processor with 4 scalar buses by ~19%");

    const auto outcomes = bench::runGrid(opt, "fig11");
    const auto ipc = [](const sweep::RunOutcome &o) {
        return o.res.ipc;
    };
    for (const char *group : {"8w", "4w"}) {
        std::printf(
            "%s\n",
            bench::pivotTable(outcomes, group, ipc)
                .render("IPC, " + std::string(group == std::string("8w")
                                                  ? "8"
                                                  : "4") +
                        "-way processor")
                .c_str());
    }

    bench::writeJson(opt, "fig11_ipc");
    return 0;
}
