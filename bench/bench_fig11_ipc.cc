/**
 * @file
 * Figure 11 (the headline figure): IPC for the 8-way and 4-way
 * processors with 1, 2 and 4 L1D ports, each scalar (xpnoIM), wide
 * (xpIM) or wide + dynamic vectorization (xpV).
 */

#include <cstdio>

#include "harness.hh"

using namespace sdv;

namespace {

void
sweep(const bench::Options &opt, unsigned width)
{
    std::vector<std::string> cols;
    std::vector<std::pair<unsigned, BusMode>> configs;
    for (unsigned ports : {1u, 2u, 4u}) {
        for (BusMode mode : {BusMode::ScalarBus, BusMode::WideBus,
                             BusMode::WideBusSdv}) {
            cols.push_back(configLabel(ports, mode));
            configs.emplace_back(ports, mode);
        }
    }

    bench::SuiteTable table(cols);
    bench::forEachWorkload(opt, [&](const Workload &w, const Program &p) {
        std::vector<double> ipcs;
        for (const auto &[ports, mode] : configs)
            ipcs.push_back(
                bench::run(makeConfig(width, ports, mode), p).ipc);
        table.add(w.name, w.isFp, ipcs);
    });

    std::printf("%s\n",
                table.render("IPC, " + std::to_string(width) +
                             "-way processor")
                    .c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 11 - IPC by port count, bus width and "
                  "dynamic vectorization",
                  "a 4-way processor with one wide bus + SDV beats the "
                  "same processor with 4 scalar buses by ~19%");
    sweep(opt, 8);
    sweep(opt, 4);
    return 0;
}
