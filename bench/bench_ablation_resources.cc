/**
 * @file
 * Ablations over the mechanism's sizing knobs (the paper fixes 128
 * registers x 4 elements and a confidence threshold of 2; Section 4.1
 * justifies VL=4 by the short average vector lengths of Spec95):
 *   - vector register count (8 ... 128),
 *   - vector length (2 / 4 / 8),
 *   - TL confidence threshold (1 / 2 / 3).
 * Reported as suite-average IPC on the 4-way, 1-wide-port machine.
 *
 * The (workload x knob) grid lives in the sweep plan registry
 * ("ablation") and runs through the sweep executor: --jobs
 * parallelizes it, --checkpoint forks each workload's compatible
 * configurations from one warm snapshot, and --scale/--footprint/
 * --samples select the scaled measurement pipeline.
 */

#include <cstdio>

#include "common/log.hh"
#include "harness.hh"

using namespace sdv;

namespace {

/** Suite-average IPC of ablation column @p column. */
double
columnIpc(const std::vector<sweep::RunOutcome> &outcomes,
          const std::string &column)
{
    double sum = 0;
    unsigned n = 0;
    for (const sweep::RunOutcome &o : outcomes)
        if (o.column == column) {
            sum += o.res.ipc;
            ++n;
        }
    sdv_assert(n > 0, "unknown ablation column ", column);
    return sum / n;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = bench::parseArgs(argc, argv, /*json_supported=*/true);
    bench::banner("Ablation - vector registers, vector length, TL "
                  "confidence",
                  "the paper fixes 128 x 4 x 64-bit and confidence 2; "
                  "these sweeps show the sensitivity of that choice");

    const auto outcomes = bench::runGrid(opt, "ablation");
    const double base = columnIpc(outcomes, "base");

    std::printf("baseline (128 regs, VL 4, conf 2): IPC %.3f\n\n", base);

    std::printf("vector register count:\n");
    for (unsigned regs : {8u, 16u, 32u, 64u, 128u})
        std::printf("  %3u regs : IPC %.3f\n", regs,
                    regs == 128u
                        ? base
                        : columnIpc(outcomes,
                                    "vregs" + std::to_string(regs)));

    std::printf("\nvector length (elements per register):\n");
    for (unsigned vl : {2u, 4u, 8u})
        std::printf("  VL %u    : IPC %.3f\n", vl,
                    vl == 4u ? base
                             : columnIpc(outcomes,
                                         "vlen" + std::to_string(vl)));

    std::printf("\nTable of Loads confidence threshold:\n");
    for (unsigned conf : {1u, 2u, 3u})
        std::printf("  conf %u  : IPC %.3f\n", conf,
                    conf == 2u ? base
                               : columnIpc(outcomes,
                                           "conf" + std::to_string(conf)));

    std::printf("\nwide-bus ride-along disabled (scalar ports + SDV):\n");
    std::printf("  1 scalar port + SDV : IPC %.3f (vs %.3f with the "
                "wide bus)\n",
                columnIpc(outcomes, "scalarbus"), base);
    bench::writeJson(opt, "ablation_resources");
    return 0;
}
