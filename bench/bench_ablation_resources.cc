/**
 * @file
 * Ablations over the mechanism's sizing knobs (the paper fixes 128
 * registers x 4 elements and a confidence threshold of 2; Section 4.1
 * justifies VL=4 by the short average vector lengths of Spec95):
 *   - vector register count (8 ... 128),
 *   - vector length (2 / 4 / 8),
 *   - TL confidence threshold (1 / 2 / 3).
 * Reported as suite-average IPC on the 4-way, 1-wide-port machine.
 */

#include <cstdio>

#include "harness.hh"

using namespace sdv;

namespace {

double
suiteIpc(const bench::Options &opt, const CoreConfig &cfg)
{
    double sum = 0;
    unsigned n = 0;
    bench::forEachWorkload(opt, [&](const Workload &, const Program &p) {
        sum += bench::run(cfg, p).ipc;
        ++n;
    });
    return n ? sum / n : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner("Ablation - vector registers, vector length, TL "
                  "confidence",
                  "the paper fixes 128 x 4 x 64-bit and confidence 2; "
                  "these sweeps show the sensitivity of that choice");

    const CoreConfig base = makeConfig(4, 1, BusMode::WideBusSdv);
    std::printf("baseline (128 regs, VL 4, conf 2): IPC %.3f\n\n",
                suiteIpc(opt, base));

    std::printf("vector register count:\n");
    for (unsigned regs : {8u, 16u, 32u, 64u, 128u}) {
        CoreConfig cfg = base;
        cfg.engine.numVregs = regs;
        std::printf("  %3u regs : IPC %.3f\n", regs, suiteIpc(opt, cfg));
    }

    std::printf("\nvector length (elements per register):\n");
    for (unsigned vl : {2u, 4u, 8u}) {
        CoreConfig cfg = base;
        cfg.engine.vlen = vl;
        std::printf("  VL %u    : IPC %.3f\n", vl, suiteIpc(opt, cfg));
    }

    std::printf("\nTable of Loads confidence threshold:\n");
    for (unsigned conf : {1u, 2u, 3u}) {
        CoreConfig cfg = base;
        cfg.engine.tlConfidence = std::uint8_t(conf);
        std::printf("  conf %u  : IPC %.3f\n", conf, suiteIpc(opt, cfg));
    }

    std::printf("\nwide-bus ride-along disabled (scalar ports + SDV):\n");
    {
        CoreConfig cfg = makeConfig(4, 1, BusMode::WideBusSdv);
        cfg.widePorts = false;
        std::printf("  1 scalar port + SDV : IPC %.3f (vs %.3f with the "
                    "wide bus)\n",
                    suiteIpc(opt, cfg), suiteIpc(opt, base));
    }
    return 0;
}
