#include "harness.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "common/log.hh"
#include "obs/telemetry.hh"
#include "sweep/fuzz.hh"

namespace sdv {
namespace bench {

namespace {

/** One recorded run for the --json trajectory. */
struct JsonRecord
{
    std::string workload;
    std::string config;
    Cycle cycles;
    std::uint64_t insts;
    double ipc;
    double wallSeconds;
    std::uint64_t valMismatches; ///< engine self-check; CI gates on 0
    std::string telemetry; ///< "[...]" under --telemetry, else empty
};

std::vector<JsonRecord> jsonRecords;

/** Set by parseArgs (--no-event-skip); applied to every run(). */
bool eventSkipEnabled = true;

/** Set by parseArgs (--no-trace); applied to every run(). */
bool traceEnabled = true;

/** Set by parseArgs (--eager-chain / --quiesce-interval). */
bool eagerChainEnabled = false;
std::uint64_t quiesceIntervalInsts = 0;

/** Set by parseArgs (--trace-events / --trace-filter / --trace-last /
 *  --telemetry); applied to every recorded run. */
std::string traceEventsPath;
unsigned traceFilterMask = obs::CatAll;
std::size_t traceLastEvents = 0;
std::uint64_t telemetryCycles = 0;

/** Recorders of every traced run, in record order (the trace file's
 *  source order — deterministic, since recorded runs are serial). */
std::vector<std::pair<std::shared_ptr<obs::TraceRecorder>, std::string>>
    traceRecorders;

} // namespace

namespace {

/**
 * --fuzz-speculation in any bench binary: run the speculation fuzz
 * campaign (every workload x N fuzzed samples, each against the
 * no-vectorization divergence oracle) with this bench's shared options
 * and exit — non-zero on any divergence, like a failed assertion. The
 * figure tables themselves are meaningless under fuzzed inputs, so the
 * campaign replaces the bench body rather than wrapping it.
 */
[[noreturn]] void
runFuzzAndExit(const Options &opt, unsigned samples,
               std::uint64_t seed)
{
    sweep::FuzzOptions fopt;
    fopt.samples = samples;
    fopt.baseSeed = seed;
    fopt.jobs = opt.jobs;
    fopt.scale = opt.scale;
    fopt.footprint = opt.footprint;
    fopt.quick = opt.quick;
    fopt.eventSkip = opt.eventSkip;

    std::printf("speculation fuzz campaign: %u samples per workload, "
                "seed %llu, %u thread(s)\n",
                fopt.samples, static_cast<unsigned long long>(seed),
                fopt.jobs);
    const sweep::FuzzReport rep = sweep::runFuzzCampaign(fopt);
    for (const sweep::FuzzOutcome &o : rep.outcomes)
        if (o.diverged)
            std::printf("  %s sample %u: DIVERGED (%s)\n",
                        o.c.workload.c_str(), o.c.sample,
                        o.reason.c_str());
    std::printf("fuzzed %zu samples: %u divergence(s)\n",
                rep.outcomes.size(), rep.divergences);
    if (rep.divergences && !rep.reproPath.empty())
        std::printf("minimized repro written to %s (re-run with "
                    "sdv_sweep --fuzz-replay)\n",
                    rep.reproPath.c_str());
    std::exit(rep.divergences ? 1 : 0);
}

} // namespace

Options
parseArgs(int argc, char **argv, bool json_supported)
{
    Options opt;
    bool fuzz = false;
    unsigned fuzz_samples = 8;
    std::uint64_t fuzz_seed = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--fuzz-speculation") == 0) {
            fuzz = true;
        } else if (std::strcmp(argv[i], "--fuzz-samples") == 0 &&
                   i + 1 < argc) {
            fuzz_samples = unsigned(std::atoi(argv[++i]));
            if (fuzz_samples == 0)
                fatal("--fuzz-samples must be >= 1");
        } else if (std::strcmp(argv[i], "--seed") == 0 &&
                   i + 1 < argc) {
            fuzz_seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
            opt.scale = unsigned(std::atoi(argv[++i]));
            if (opt.scale == 0)
                fatal("--scale ", argv[i], " is invalid: the scale is "
                      "a dynamic-length multiplier and must be >= 1");
        } else if (std::strcmp(argv[i], "--footprint") == 0 &&
                   i + 1 < argc) {
            opt.footprint = parseFootprint(argv[++i]);
        } else if (std::strcmp(argv[i], "--samples") == 0 &&
                   i + 1 < argc) {
            const int samples = std::atoi(argv[++i]);
            if (samples < 0)
                fatal("--samples ", argv[i], " is invalid: sample "
                      "count must be >= 0 (0 disables sampling)");
            opt.samples = unsigned(samples);
        } else if (std::strcmp(argv[i], "--sample-insts") == 0 &&
                   i + 1 < argc) {
            opt.sampleInsts = std::strtoull(argv[++i], nullptr, 0);
            if (opt.sampleInsts == 0)
                fatal("--sample-insts must be >= 1");
        } else if (std::strcmp(argv[i], "--quiesce-interval") == 0 &&
                   i + 1 < argc) {
            opt.quiesceInterval = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--eager-chain") == 0) {
            opt.eagerChain = true;
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            opt.quick = true;
        } else if (std::strcmp(argv[i], "--no-event-skip") == 0) {
            opt.eventSkip = false;
        } else if (std::strcmp(argv[i], "--no-trace") == 0) {
            opt.trace = false;
        } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            opt.jobs = unsigned(std::atoi(argv[++i]));
            if (opt.jobs == 0) {
                opt.jobs = sweep::resolveJobs(0);
                opt.jobsAuto = true;
            }
        } else if (std::strcmp(argv[i], "--checkpoint") == 0) {
            opt.checkpoint = true;
        } else if (std::strcmp(argv[i], "--warmup") == 0 &&
                   i + 1 < argc) {
            opt.warmupInsts = std::strtoull(argv[++i], nullptr, 0);
            if (opt.warmupInsts == 0)
                opt.warmupInsts = 1;
        } else if (json_supported && std::strcmp(argv[i], "--json") == 0 &&
                   i + 1 < argc) {
            opt.jsonPath = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-events") == 0 &&
                   i + 1 < argc) {
            opt.traceEventsPath = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-filter") == 0 &&
                   i + 1 < argc) {
            if (!obs::parseCategoryMask(argv[++i], opt.traceFilter))
                fatal("--trace-filter: unknown category in '", argv[i],
                      "' (use a comma list of sdv, mem, core)");
        } else if (std::strcmp(argv[i], "--trace-last") == 0 &&
                   i + 1 < argc) {
            opt.traceLast =
                std::size_t(std::strtoull(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--telemetry") == 0 &&
                   i + 1 < argc) {
            opt.telemetryInterval =
                std::strtoull(argv[++i], nullptr, 0);
            if (opt.telemetryInterval == 0)
                fatal("--telemetry needs an interval >= 1 cycle");
        } else {
            std::fprintf(stderr,
                         "usage: %s [--scale N] [--footprint "
                         "base|l2|mem] [--quick] [--no-event-skip] "
                         "[--no-trace] "
                         "[--jobs N] [--checkpoint] [--warmup N] "
                         "[--samples N] [--sample-insts M] "
                         "[--quiesce-interval N] [--eager-chain] "
                         "[--trace-events F] [--trace-filter C] "
                         "[--trace-last N] [--telemetry N] "
                         "[--fuzz-speculation] [--fuzz-samples N] "
                         "[--seed N]%s\n",
                         argv[0],
                         json_supported ? " [--json PATH]" : "");
            std::exit(2);
        }
    }
    if (fuzz)
        runFuzzAndExit(opt, fuzz_samples, fuzz_seed);
    eventSkipEnabled = opt.eventSkip;
    traceEnabled = opt.trace;
    eagerChainEnabled = opt.eagerChain;
    quiesceIntervalInsts = opt.quiesceInterval;
    traceEventsPath = opt.traceEventsPath;
    traceFilterMask = opt.traceFilter;
    traceLastEvents = opt.traceLast;
    telemetryCycles = opt.telemetryInterval;
    detail::setQuiet(true);
    return opt;
}

void
banner(const std::string &title, const std::string &paper_line)
{
    std::printf(
        "==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("paper: %s\n", paper_line.c_str());
    std::printf(
        "==============================================================\n\n");
}

SimResult
run(const CoreConfig &cfg, const Program &prog)
{
    CoreConfig c = cfg;
    c.eventSkip = eventSkipEnabled;
    c.traceExec = traceEnabled;
    c.engine.eagerChainLoads = eagerChainEnabled;
    Simulator sim(c, prog);
    return sim.run(200'000'000, /*verify=*/false,
                   quiesceIntervalInsts);
}

SimResult
run(const CoreConfig &cfg, const Program &prog,
    const std::string &workload, const std::string &config_label)
{
    CoreConfig c = cfg;
    c.eventSkip = eventSkipEnabled;
    c.traceExec = traceEnabled;
    c.engine.eagerChainLoads = eagerChainEnabled;
    Simulator sim(c, prog);

    // Flight recorder + interval telemetry (pure observation; only
    // attached when the flags asked for them, so default runs take the
    // exact same path as before).
    std::shared_ptr<obs::TraceRecorder> rec;
    if (!traceEventsPath.empty()) {
        rec = std::make_shared<obs::TraceRecorder>();
        rec->configure(traceFilterMask, traceLastEvents);
        sim.setRecorder(rec.get());
    }
    obs::IntervalTelemetry telemetry(telemetryCycles ? telemetryCycles
                                                     : 1);
    if (telemetryCycles)
        sim.setTelemetry(&telemetry);

    const auto t0 = std::chrono::steady_clock::now();
    SimResult r =
        sim.run(200'000'000, /*verify=*/false, quiesceIntervalInsts);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    if (rec)
        traceRecorders.emplace_back(rec,
                                    workload + "/" + config_label);
    jsonRecords.push_back({workload, config_label, r.cycles, r.insts,
                           r.ipc, wall,
                           r.engine.validationValueMismatches,
                           telemetryCycles ? telemetry.toJson()
                                           : std::string()});
    return r;
}

void
writeJson(const Options &opt, const std::string &bench_name)
{
    // Flush the flight-recorder trace first: it is requested by its
    // own flag and must appear even without --json.
    if (!opt.traceEventsPath.empty()) {
        std::vector<obs::TraceSource> sources;
        sources.reserve(traceRecorders.size());
        for (const auto &[rec, label] : traceRecorders)
            sources.push_back({rec.get(), label});
        if (!obs::writeTraceFile(opt.traceEventsPath, sources))
            fatal("cannot write --trace-events path ",
                  opt.traceEventsPath);
        std::size_t recorded = 0;
        for (const obs::TraceSource &s : sources)
            recorded += s.recorder->size();
        std::printf("trace: %zu events from %zu runs written to %s\n",
                    recorded, sources.size(),
                    opt.traceEventsPath.c_str());
    }

    if (opt.jsonPath.empty())
        return;
    FILE *f = std::fopen(opt.jsonPath.c_str(), "w");
    if (!f)
        fatal("cannot open --json path ", opt.jsonPath);
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < jsonRecords.size(); ++i) {
        const JsonRecord &r = jsonRecords[i];
        const double mips =
            r.wallSeconds > 0.0
                ? double(r.insts) / r.wallSeconds / 1e6
                : 0.0;
        std::fprintf(
            f,
            "  {\"bench\": \"%s\", \"workload\": \"%s\", "
            "\"config\": \"%s\", \"cycles\": %llu, \"insts\": %llu, "
            "\"ipc\": %.4f, \"wall_seconds\": %.6f, "
            "\"sim_mips\": %.3f, \"val_mismatches\": %llu",
            bench_name.c_str(), r.workload.c_str(), r.config.c_str(),
            static_cast<unsigned long long>(r.cycles),
            static_cast<unsigned long long>(r.insts), r.ipc,
            r.wallSeconds, mips,
            static_cast<unsigned long long>(r.valMismatches));
        // Telemetry rides along only under --telemetry: the default
        // record layout stays byte-identical to the baselines.
        if (!r.telemetry.empty() && r.telemetry != "[]")
            std::fprintf(f, ", \"telemetry\": %s",
                         r.telemetry.c_str());
        std::fprintf(f, "}%s\n",
                     i + 1 < jsonRecords.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
}

SuiteTable::SuiteTable(std::vector<std::string> columns)
    : columns_(std::move(columns))
{
}

void
SuiteTable::add(const std::string &name, bool is_fp,
                const std::vector<double> &values)
{
    sdv_assert(values.size() == columns_.size(), "row/column mismatch");
    rows_.push_back({name, is_fp, values});
}

double
SuiteTable::intAvg(size_t col) const
{
    double sum = 0;
    unsigned n = 0;
    for (const Row &r : rows_)
        if (!r.isFp) {
            sum += r.values[col];
            ++n;
        }
    return n ? sum / n : 0.0;
}

double
SuiteTable::fpAvg(size_t col) const
{
    double sum = 0;
    unsigned n = 0;
    for (const Row &r : rows_)
        if (r.isFp) {
            sum += r.values[col];
            ++n;
        }
    return n ? sum / n : 0.0;
}

double
SuiteTable::totalAvg(size_t col) const
{
    double sum = 0;
    for (const Row &r : rows_)
        sum += r.values[col];
    return rows_.empty() ? 0.0 : sum / double(rows_.size());
}

std::string
SuiteTable::render(const std::string &title, bool percent,
                   int precision) const
{
    TextTable t(title);
    std::vector<std::string> header = {"benchmark"};
    for (const auto &c : columns_)
        header.push_back(c);
    t.setHeader(header);

    auto add_row = [&](const std::string &name,
                       const std::vector<double> &vals) {
        if (percent)
            t.addPercentRow(name, vals, precision);
        else
            t.addRow(name, vals, precision);
    };

    bool fp_started = false;
    for (const Row &r : rows_) {
        if (r.isFp && !fp_started) {
            // INT average row before the FP block, as in the figures.
            std::vector<double> avgs;
            for (size_t c = 0; c < columns_.size(); ++c)
                avgs.push_back(intAvg(c));
            add_row("INT", avgs);
            t.addSeparator();
            fp_started = true;
        }
        add_row(r.name, r.values);
    }
    std::vector<double> fp_avgs, total_avgs;
    for (size_t c = 0; c < columns_.size(); ++c) {
        fp_avgs.push_back(fpAvg(c));
        total_avgs.push_back(totalAvg(c));
    }
    if (fp_started)
        add_row("FP", fp_avgs);
    t.addSeparator();
    add_row("Spec95", total_avgs);
    return t.render();
}

std::vector<sweep::RunOutcome>
runGrid(const Options &opt, const std::string &plan_name)
{
    sweep::PlanOptions popt;
    popt.scale = opt.scale;
    popt.footprint = opt.footprint;
    popt.quick = opt.quick;
    const sweep::SweepPlan plan = sweep::buildPlan(plan_name, popt);

    sweep::ExecOptions eopt;
    eopt.jobs = opt.jobs;
    eopt.jobsAutoDetected = opt.jobsAuto;
    eopt.eventSkip = opt.eventSkip;
    eopt.trace = opt.trace;
    eopt.checkpoint = opt.checkpoint;
    eopt.warmupInsts = opt.warmupInsts;
    eopt.sample.samples = opt.samples;
    eopt.sample.measureInsts = opt.sampleInsts;
    eopt.quiesceInterval = opt.quiesceInterval;
    eopt.eagerChain = opt.eagerChain;
    eopt.traceEvents = !opt.traceEventsPath.empty();
    eopt.traceCategories = opt.traceFilter;
    eopt.traceLast = opt.traceLast;
    eopt.telemetryInterval = opt.telemetryInterval;

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<sweep::RunOutcome> outcomes =
        sweep::runPlan(plan, eopt);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    // Record for writeJson(). Per-run wall times overlap under --jobs,
    // so charge each run its share of the grid's wall clock: the sum
    // (what compare_bench.py warns on) stays the true elapsed time.
    for (const sweep::RunOutcome &o : outcomes) {
        jsonRecords.push_back(
            {o.workload, o.configKey, o.res.cycles, o.res.insts,
             o.res.ipc,
             outcomes.empty() ? 0.0 : wall / double(outcomes.size()),
             o.res.engine.validationValueMismatches, o.telemetryJson});
        if (o.trace)
            traceRecorders.emplace_back(
                o.trace, o.workload + "/" + o.configKey);
    }
    return outcomes;
}

SuiteTable
pivotTable(const std::vector<sweep::RunOutcome> &outcomes,
           const std::string &group,
           const std::function<double(const sweep::RunOutcome &)> &metric)
{
    std::vector<std::string> cols;
    for (const sweep::RunOutcome &o : outcomes) {
        if (!group.empty() && o.group != group)
            continue;
        if (o.workload != outcomes.front().workload)
            break;
        cols.push_back(o.column);
    }
    SuiteTable table(cols);

    std::string current;
    bool is_fp = false;
    std::vector<double> row;
    auto flush = [&]() {
        if (!current.empty())
            table.add(current, is_fp, row);
        row.clear();
    };
    for (const sweep::RunOutcome &o : outcomes) {
        if (!group.empty() && o.group != group)
            continue;
        if (o.workload != current) {
            flush();
            current = o.workload;
            is_fp = o.isFp;
        }
        row.push_back(metric(o));
    }
    flush();
    return table;
}

void
forEachWorkload(
    const Options &opt,
    const std::function<void(const Workload &, const Program &)> &fn)
{
    unsigned ints_done = 0, fps_done = 0;
    for (const Workload &w : allWorkloads()) {
        if (opt.quick) {
            if (!w.isFp && ints_done >= 2)
                continue;
            if (w.isFp && fps_done >= 1)
                continue;
        }
        const Program prog = w.instantiate(opt.scale, opt.footprint);
        fn(w, prog);
        (w.isFp ? fps_done : ints_done) += 1;
    }
}

} // namespace bench
} // namespace sdv
