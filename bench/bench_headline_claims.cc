/**
 * @file
 * The paper's headline prose claims, measured:
 *  - a 4-way core with 1 wide bus + SDV is 19% faster than the same
 *    core with 4 scalar buses (abstract / Section 1);
 *  - memory requests drop 15% (SpecInt) / 20% (SpecFP) (Section 1);
 *  - SDV raises 4-way 1-wide-bus IPC by 21.2% (SpecInt) / 8.1%
 *    (SpecFP) (Section 6);
 *  - 4-way 1 wide port + SDV is ~3% faster than 8-way with 4 scalar
 *    ports (Section 6);
 *  - stores hitting a vector register range: 4.5% / 2.5% (Section 3.6).
 *
 * The four machines live in the sweep plan registry ("headline") and
 * run through the sweep executor, so --jobs/--checkpoint/--warmup and
 * the --scale/--footprint/--samples pipeline all apply — with the
 * exact same measured statistics and JSON records as the legacy
 * per-workload loops.
 */

#include <cstdio>

#include "harness.hh"

using namespace sdv;

int
main(int argc, char **argv)
{
    const auto opt = bench::parseArgs(argc, argv, /*json_supported=*/true);
    bench::banner("Headline claims (abstract, Sections 1, 3.6 and 6)",
                  "speedups, memory-request reductions, store conflict "
                  "rates");

    const auto outcomes = bench::runGrid(opt, "headline");

    double int_cycles_v = 0, int_cycles_4p = 0, int_cycles_im = 0;
    double fp_cycles_v = 0, fp_cycles_4p = 0, fp_cycles_im = 0;
    double cycles_8w4p = 0, cycles_v_total = 0;
    double int_req_v = 0, int_req_im = 0, fp_req_v = 0, fp_req_im = 0;
    double int_conf = 0, fp_conf = 0;
    unsigned n_int = 0, n_fp = 0;

    // Outcomes arrive workload-major in grid order: V, IM, 4p, 8w4p.
    for (std::size_t i = 0; i + 3 < outcomes.size(); i += 4) {
        const SimResult &v = outcomes[i].res;
        const SimResult &im = outcomes[i + 1].res;
        const SimResult &s4p = outcomes[i + 2].res;
        const SimResult &w8 = outcomes[i + 3].res;

        const double conf =
            v.engine.storesChecked
                ? double(v.engine.storeRangeConflicts) /
                      double(v.engine.storesChecked)
                : 0.0;
        if (outcomes[i].isFp) {
            fp_cycles_v += double(v.cycles);
            fp_cycles_im += double(im.cycles);
            fp_cycles_4p += double(s4p.cycles);
            fp_req_v += double(v.memoryRequests());
            fp_req_im += double(im.memoryRequests());
            fp_conf += conf;
            ++n_fp;
        } else {
            int_cycles_v += double(v.cycles);
            int_cycles_im += double(im.cycles);
            int_cycles_4p += double(s4p.cycles);
            int_req_v += double(v.memoryRequests());
            int_req_im += double(im.memoryRequests());
            int_conf += conf;
            ++n_int;
        }
        cycles_8w4p += double(w8.cycles);
        cycles_v_total += double(v.cycles);
    }

    const double cycles_v = int_cycles_v + fp_cycles_v;
    const double cycles_4p = int_cycles_4p + fp_cycles_4p;

    std::printf("4-way, 1 wide port + SDV  vs  4-way, 4 scalar ports:\n");
    std::printf("  speedup: %+.1f%%   (paper: +19%%)\n\n",
                100.0 * (cycles_4p / cycles_v - 1.0));

    std::printf("memory requests, 1pV vs 1pIM (4-way):\n");
    std::printf("  SpecInt: %+.1f%%   (paper: -15%%)\n",
                100.0 * (int_req_v / int_req_im - 1.0));
    std::printf("  SpecFP:  %+.1f%%   (paper: -20%%)\n\n",
                100.0 * (fp_req_v / fp_req_im - 1.0));

    std::printf("IPC uplift of SDV on a 4-way, 1 wide port machine:\n");
    std::printf("  SpecInt: %+.1f%%   (paper: +21.2%%)\n",
                100.0 * (int_cycles_im / int_cycles_v - 1.0));
    std::printf("  SpecFP:  %+.1f%%   (paper: +8.1%%)\n\n",
                100.0 * (fp_cycles_im / fp_cycles_v - 1.0));

    std::printf("4-way 1 wide port + SDV  vs  8-way 4 scalar ports:\n");
    std::printf("  speedup: %+.1f%%   (paper: +3%%)\n\n",
                100.0 * (cycles_8w4p / cycles_v_total - 1.0));

    std::printf("stores hitting a vector register range (Section 3.6):\n");
    std::printf("  SpecInt: %5.2f%%   (paper: 4.5%%)\n",
                100.0 * int_conf / (n_int ? n_int : 1));
    std::printf("  SpecFP:  %5.2f%%   (paper: 2.5%%)\n",
                100.0 * fp_conf / (n_fp ? n_fp : 1));
    bench::writeJson(opt, "headline_claims");
    return 0;
}
