/**
 * @file
 * Figure 13: effectiveness of wide buses — the percentage of read line
 * accesses contributing 1, 2, 3 or 4 useful words and the percentage
 * of entirely speculative (unused) accesses, 4-way, one wide port,
 * with dynamic vectorization. Runs through the sweep plan registry
 * ("fig13"); honours --jobs / --checkpoint.
 */

#include <cstdio>

#include "harness.hh"

using namespace sdv;

int
main(int argc, char **argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 13 - useful words per wide-bus line read",
                  "most accesses serve multiple words; unused "
                  "(speculative) accesses are small except compress");

    const auto outcomes = bench::runGrid(opt, "fig13");

    bench::SuiteTable table({"1pos", "2pos", "3pos", "4pos", "unused"});
    for (const sweep::RunOutcome &o : outcomes) {
        table.add(o.workload, o.isFp,
                  {o.res.wideBus.fraction(1), o.res.wideBus.fraction(2),
                   o.res.wideBus.fraction(3), o.res.wideBus.fraction(4),
                   o.res.wideBus.unusedFraction()});
    }
    std::printf("%s\n",
                table.render("Read line accesses by useful word count, "
                             "4-way, 1 wide port",
                             /*percent=*/true, 1)
                    .c_str());
    return 0;
}
