/**
 * @file
 * Figure 13: effectiveness of wide buses — the percentage of read line
 * accesses contributing 1, 2, 3 or 4 useful words and the percentage
 * of entirely speculative (unused) accesses, 4-way, one wide port,
 * with dynamic vectorization.
 */

#include <cstdio>

#include "harness.hh"

using namespace sdv;

int
main(int argc, char **argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 13 - useful words per wide-bus line read",
                  "most accesses serve multiple words; unused "
                  "(speculative) accesses are small except compress");

    bench::SuiteTable table({"1pos", "2pos", "3pos", "4pos", "unused"});
    bench::forEachWorkload(opt, [&](const Workload &w, const Program &p) {
        const SimResult r =
            bench::run(makeConfig(4, 1, BusMode::WideBusSdv), p);
        table.add(w.name, w.isFp,
                  {r.wideBus.fraction(1), r.wideBus.fraction(2),
                   r.wideBus.fraction(3), r.wideBus.fraction(4),
                   r.wideBus.unusedFraction()});
    });
    std::printf("%s\n",
                table.render("Read line accesses by useful word count, "
                             "4-way, 1 wide port",
                             /*percent=*/true, 1)
                    .c_str());
    return 0;
}
