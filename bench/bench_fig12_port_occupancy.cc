/**
 * @file
 * Figure 12: L1D port occupancy for the same machine matrix as Figure
 * 11 — dynamic vectorization relieves port pressure even though it
 * issues speculative element loads.
 */

#include <cstdio>

#include "harness.hh"

using namespace sdv;

namespace {

void
sweep(const bench::Options &opt, unsigned width)
{
    std::vector<std::string> cols;
    std::vector<std::pair<unsigned, BusMode>> configs;
    for (unsigned ports : {1u, 2u, 4u}) {
        for (BusMode mode : {BusMode::ScalarBus, BusMode::WideBus,
                             BusMode::WideBusSdv}) {
            cols.push_back(configLabel(ports, mode));
            configs.emplace_back(ports, mode);
        }
    }

    bench::SuiteTable table(cols);
    bench::forEachWorkload(opt, [&](const Workload &w, const Program &p) {
        std::vector<double> occ;
        for (const auto &[ports, mode] : configs) {
            const SimResult r =
                bench::run(makeConfig(width, ports, mode), p);
            occ.push_back(r.ports.occupancy(ports));
        }
        table.add(w.name, w.isFp, occ);
    });

    std::printf("%s\n",
                table.render("Port occupancy, " + std::to_string(width) +
                                 "-way processor",
                             /*percent=*/true, 1)
                    .c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 12 - L1D bus occupancy",
                  "wide buses and vectorization both cut occupancy; the "
                  "1-port configurations are the most contended");
    sweep(opt, 8);
    sweep(opt, 4);
    return 0;
}
