/**
 * @file
 * Figure 12: L1D port occupancy for the same machine matrix as Figure
 * 11 — dynamic vectorization relieves port pressure even though it
 * issues speculative element loads. The matrix comes from the sweep
 * plan registry ("fig12") and honours --jobs / --checkpoint.
 */

#include <cstdio>

#include "harness.hh"

using namespace sdv;

int
main(int argc, char **argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 12 - L1D bus occupancy",
                  "wide buses and vectorization both cut occupancy; the "
                  "1-port configurations are the most contended");

    const auto outcomes = bench::runGrid(opt, "fig12");
    const auto occupancy = [](const sweep::RunOutcome &o) {
        return o.res.ports.occupancy(o.cfg.dcachePorts);
    };
    for (const char *group : {"8w", "4w"}) {
        std::printf(
            "%s\n",
            bench::pivotTable(outcomes, group, occupancy)
                .render("Port occupancy, " +
                            std::string(group == std::string("8w")
                                            ? "8"
                                            : "4") +
                            "-way processor",
                        /*percent=*/true, 1)
                .c_str());
    }
    return 0;
}
