/**
 * @file
 * Figure 3: percentage of vectorizable instructions with unbounded
 * resources (paper: ~47% SpecInt, ~51% SpecFP).
 */

#include <cstdio>

#include "harness.hh"
#include "sim/vect_analyzer.hh"

using namespace sdv;

int
main(int argc, char **argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 3 - percentage of vectorizable instructions",
                  "unbounded resources: 47% of SpecInt95, 51% of "
                  "SpecFP95 instructions can be vectorized");

    bench::SuiteTable table({"vectorizable", "loads", "arith"});
    bench::forEachWorkload(opt, [&](const Workload &w, const Program &p) {
        const VectAnalysis a = analyzeVectorizability(p);
        table.add(w.name, w.isFp,
                  {a.fraction(),
                   double(a.vectorizableLoads) / double(a.insts),
                   double(a.vectorizableArith) / double(a.insts)});
    });
    std::printf("%s\n",
                table.render("Vectorizable fraction of dynamic "
                             "instructions", /*percent=*/true, 1)
                    .c_str());
    std::printf("paper reference: INTEGER ~47%%, FP ~51%%\n");
    return 0;
}
