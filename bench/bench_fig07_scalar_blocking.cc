/**
 * @file
 * Figure 7: IPC with decode blocking on not-ready captured-scalar
 * operands (real) versus no blocking (ideal), 4-way, one wide port,
 * 128 vector registers.
 */

#include <cstdio>

#include "harness.hh"

using namespace sdv;

int
main(int argc, char **argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 7 - IPC blocking vs not blocking mixed-operand "
                  "vector instructions",
                  "blocking on a not-ready scalar operand costs little "
                  "(real vs ideal bars nearly equal)");

    bench::SuiteTable table({"real", "ideal", "loss"});
    bench::forEachWorkload(opt, [&](const Workload &w, const Program &p) {
        CoreConfig real_cfg = makeConfig(4, 1, BusMode::WideBusSdv);
        real_cfg.engine.blockOnScalarOperand = true;
        CoreConfig ideal_cfg = real_cfg;
        ideal_cfg.engine.blockOnScalarOperand = false;

        const SimResult real = bench::run(real_cfg, p);
        const SimResult ideal = bench::run(ideal_cfg, p);
        const double loss =
            ideal.ipc > 0 ? (ideal.ipc - real.ipc) / ideal.ipc : 0.0;
        table.add(w.name, w.isFp, {real.ipc, ideal.ipc, 100.0 * loss});
    });
    std::printf("%s\n",
                table.render("IPC, 4-way, 1 wide port, 128 vregs "
                             "(loss column in %)")
                    .c_str());
    return 0;
}
