/**
 * @file
 * Figure 7: IPC with decode blocking on not-ready captured-scalar
 * operands (real) versus no blocking (ideal), 4-way, one wide port,
 * 128 vector registers. The real/ideal pair comes from the sweep plan
 * registry ("fig07") and honours --jobs / --checkpoint.
 */

#include <cstdio>

#include "harness.hh"

using namespace sdv;

int
main(int argc, char **argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 7 - IPC blocking vs not blocking mixed-operand "
                  "vector instructions",
                  "blocking on a not-ready scalar operand costs little "
                  "(real vs ideal bars nearly equal)");

    const auto outcomes = bench::runGrid(opt, "fig07");

    bench::SuiteTable table({"real", "ideal", "loss"});
    // Plan order: per workload, "real" then "ideal".
    for (size_t i = 0; i + 1 < outcomes.size(); i += 2) {
        const sweep::RunOutcome &real = outcomes[i];
        const sweep::RunOutcome &ideal = outcomes[i + 1];
        const double loss =
            ideal.res.ipc > 0
                ? (ideal.res.ipc - real.res.ipc) / ideal.res.ipc
                : 0.0;
        table.add(real.workload, real.isFp,
                  {real.res.ipc, ideal.res.ipc, 100.0 * loss});
    }
    std::printf("%s\n",
                table.render("IPC, 4-way, 1 wide port, 128 vregs "
                             "(loss column in %)")
                    .c_str());
    return 0;
}
