/**
 * @file
 * Shared scaffolding for the per-figure benchmark binaries: workload
 * construction, simulation helpers, suite averaging and paper-style
 * table output.
 */

#ifndef SDV_BENCH_HARNESS_HH
#define SDV_BENCH_HARNESS_HH

#include <functional>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace sdv {
namespace bench {

/** Command-line options shared by all bench binaries. */
struct Options
{
    unsigned scale = 1; ///< workload scale factor (--scale N)
    bool quick = false; ///< --quick: restrict to a subset of runs
};

/** Parse argv (unknown flags are fatal with usage help). */
Options parseArgs(int argc, char **argv);

/** Print the figure banner. */
void banner(const std::string &title, const std::string &paper_line);

/**
 * Run one workload on one configuration (verification off: the test
 * suite covers correctness; benches measure).
 */
SimResult run(const CoreConfig &cfg, const Program &prog);

/** Per-benchmark metric collection with INT / FP / total averages. */
struct SuiteTable
{
    explicit SuiteTable(std::vector<std::string> columns);

    /** Add one benchmark row. */
    void add(const std::string &name, bool is_fp,
             const std::vector<double> &values);

    /**
     * Render with INT / FP / Spec95 average rows appended, formatting
     * cells via @p fmt (defaults to 2-decimal numbers).
     */
    std::string render(const std::string &title, bool percent = false,
                       int precision = 2) const;

    /** @return the average over INT rows for column @p col. */
    double intAvg(size_t col) const;

    /** @return the average over FP rows for column @p col. */
    double fpAvg(size_t col) const;

    /** @return the average over all rows for column @p col. */
    double totalAvg(size_t col) const;

  private:
    std::vector<std::string> columns_;
    struct Row
    {
        std::string name;
        bool isFp;
        std::vector<double> values;
    };
    std::vector<Row> rows_;
};

/** Run @p fn over every workload (honouring Options::quick = first two
 *  INT + first FP only). */
void forEachWorkload(
    const Options &opt,
    const std::function<void(const Workload &, const Program &)> &fn);

} // namespace bench
} // namespace sdv

#endif // SDV_BENCH_HARNESS_HH
