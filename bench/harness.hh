/**
 * @file
 * Shared scaffolding for the per-figure benchmark binaries: workload
 * construction, simulation helpers, suite averaging and paper-style
 * table output.
 */

#ifndef SDV_BENCH_HARNESS_HH
#define SDV_BENCH_HARNESS_HH

#include <functional>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/simulator.hh"
#include "sweep/executor.hh"
#include "workloads/workload.hh"

namespace sdv {
namespace bench {

/** Command-line options shared by all bench binaries. */
struct Options
{
    unsigned scale = 1; ///< workload scale factor (--scale N, >= 1)
    Footprint footprint = Footprint::Base; ///< --footprint base|l2|mem
    bool quick = false; ///< --quick: restrict to a subset of runs
    bool eventSkip = true; ///< --no-event-skip: tick every cycle
    bool trace = true; ///< --no-trace: interpreter dispatch reference
    unsigned jobs = 1;  ///< --jobs N: worker threads for grid benches
                        ///< (0 on the command line = auto-detect)
    bool jobsAuto = false; ///< jobs came from --jobs 0 auto-detection
    bool checkpoint = false; ///< --checkpoint: fork from warm snapshots
    std::uint64_t warmupInsts = 10'000; ///< --warmup N
    unsigned samples = 0; ///< --samples N: interval sampling (grids)
    std::uint64_t sampleInsts = 20'000; ///< --sample-insts M per sample
    /** --quiesce-interval N: context-switch the transient vector state
     *  every N fetched instructions (0 = never; steady-state
     *  experiments; see docs/performance.md). */
    std::uint64_t quiesceInterval = 0;
    /** --eager-chain: spawn load-chain successors one incarnation
     *  early (EngineConfig::eagerChainLoads). */
    bool eagerChain = false;
    std::string jsonPath; ///< --json <path>: machine-readable results

    // Observability (docs/observability.md); applies to recorded runs
    // (the named run() overload and runGrid). All default-off so the
    // default --json output stays byte-identical.
    std::string traceEventsPath; ///< --trace-events F: Perfetto JSON
    unsigned traceFilter = obs::CatAll; ///< --trace-filter sdv,mem,core
    std::size_t traceLast = 0;   ///< --trace-last N: ring capacity
    std::uint64_t telemetryInterval = 0; ///< --telemetry N cycles
};

/**
 * Parse argv (unknown flags are fatal with usage help).
 * @param json_supported accept --json; leave false in benches that
 *        never record runs, so the flag fails loudly instead of
 *        silently producing no file
 */
Options parseArgs(int argc, char **argv, bool json_supported = false);

/** Print the figure banner. */
void banner(const std::string &title, const std::string &paper_line);

/**
 * Run one workload on one configuration (verification off: the test
 * suite covers correctness; benches measure).
 */
SimResult run(const CoreConfig &cfg, const Program &prog);

/**
 * Like run(), additionally recording the result (plus host wall time
 * and simulated MIPS) under @p workload / @p config_label for a later
 * writeJson(). Use in benches that participate in the BENCH_*.json
 * perf trajectory.
 */
SimResult run(const CoreConfig &cfg, const Program &prog,
              const std::string &workload,
              const std::string &config_label);

/**
 * Emit every recorded run as a JSON array to Options::jsonPath (no-op
 * when --json was not given). Schema per element:
 * {bench, workload, config, cycles, insts, ipc, wall_seconds,
 *  sim_mips} plus an optional "telemetry" array under --telemetry.
 * Also flushes the flight-recorder trace file when --trace-events was
 * given (independent of --json), one source per recorded run in
 * record order.
 */
void writeJson(const Options &opt, const std::string &bench_name);

/** Per-benchmark metric collection with INT / FP / total averages. */
struct SuiteTable
{
    explicit SuiteTable(std::vector<std::string> columns);

    /** Add one benchmark row. */
    void add(const std::string &name, bool is_fp,
             const std::vector<double> &values);

    /**
     * Render with INT / FP / Spec95 average rows appended, formatting
     * cells via @p fmt (defaults to 2-decimal numbers).
     */
    std::string render(const std::string &title, bool percent = false,
                       int precision = 2) const;

    /** @return the average over INT rows for column @p col. */
    double intAvg(size_t col) const;

    /** @return the average over FP rows for column @p col. */
    double fpAvg(size_t col) const;

    /** @return the average over all rows for column @p col. */
    double totalAvg(size_t col) const;

  private:
    std::vector<std::string> columns_;
    struct Row
    {
        std::string name;
        bool isFp;
        std::vector<double> values;
    };
    std::vector<Row> rows_;
};

/** Run @p fn over every workload (honouring Options::quick = first two
 *  INT + first FP only). */
void forEachWorkload(
    const Options &opt,
    const std::function<void(const Workload &, const Program &)> &fn);

/**
 * Instantiate the registry plan for figure @p plan_name with this
 * bench's options and execute it through the sweep executor —
 * honouring --jobs, --checkpoint and --warmup — recording every run
 * for writeJson(). Outcomes come back in plan order (workload-major,
 * grid order within), bit-identical to the legacy serial per-figure
 * loops.
 */
std::vector<sweep::RunOutcome> runGrid(const Options &opt,
                                       const std::string &plan_name);

/**
 * Pivot @p outcomes into a SuiteTable: one row per workload, one
 * column per grid config whose group equals @p group (all configs
 * when empty), cell values via @p metric.
 */
SuiteTable pivotTable(
    const std::vector<sweep::RunOutcome> &outcomes,
    const std::string &group,
    const std::function<double(const sweep::RunOutcome &)> &metric);

} // namespace bench
} // namespace sdv

#endif // SDV_BENCH_HARNESS_HH
