/**
 * @file
 * Figure 14: percentage of committed instructions that are turned into
 * validation operations (8-way, one wide bus). Paper: 28% for SpecInt,
 * 23% for SpecFP. Runs through the sweep plan registry ("fig14");
 * honours --jobs / --checkpoint.
 */

#include <cstdio>

#include "harness.hh"

using namespace sdv;

int
main(int argc, char **argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 14 - percentage of validation instructions",
                  "28% of SpecInt and 23% of SpecFP instructions "
                  "validate a vector element instead of executing");

    const auto outcomes = bench::runGrid(opt, "fig14");

    bench::SuiteTable table({"validations", "load vals", "arith vals"});
    for (const sweep::RunOutcome &o : outcomes) {
        const double total = double(o.res.insts ? o.res.insts : 1);
        table.add(o.workload, o.isFp,
                  {o.res.validationFraction(),
                   double(o.res.core.committedLoadValidations) / total,
                   double(o.res.core.committedValidations -
                          o.res.core.committedLoadValidations) /
                       total});
    }
    std::printf("%s\n",
                table.render("Committed validations / committed "
                             "instructions, 8-way, 1 wide port",
                             /*percent=*/true, 1)
                    .c_str());
    return 0;
}
