/**
 * @file
 * Figure 14: percentage of committed instructions that are turned into
 * validation operations (8-way, one wide bus). Paper: 28% for SpecInt,
 * 23% for SpecFP.
 */

#include <cstdio>

#include "harness.hh"

using namespace sdv;

int
main(int argc, char **argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 14 - percentage of validation instructions",
                  "28% of SpecInt and 23% of SpecFP instructions "
                  "validate a vector element instead of executing");

    bench::SuiteTable table({"validations", "load vals", "arith vals"});
    bench::forEachWorkload(opt, [&](const Workload &w, const Program &p) {
        const SimResult r =
            bench::run(makeConfig(8, 1, BusMode::WideBusSdv), p);
        const double total = double(r.insts ? r.insts : 1);
        table.add(w.name, w.isFp,
                  {r.validationFraction(),
                   double(r.core.committedLoadValidations) / total,
                   double(r.core.committedValidations -
                          r.core.committedLoadValidations) /
                       total});
    });
    std::printf("%s\n",
                table.render("Committed validations / committed "
                             "instructions, 8-way, 1 wide port",
                             /*percent=*/true, 1)
                    .c_str());
    return 0;
}
