/**
 * @file
 * Figure 15: prediction accuracy of the speculative work — the average
 * number of vector register elements that were computed and used
 * (validated), computed but never used, and never computed, at register
 * release (8-way, 128 x 4-element registers). Paper: on average only
 * 1.75 of 3.75 computed elements are validated. Runs through the sweep
 * plan registry ("fig15"); honours --jobs / --checkpoint.
 */

#include <cstdio>

#include "harness.hh"

using namespace sdv;

int
main(int argc, char **argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 15 - vector element fates",
                  "avg per released register: ~1.75 computed+used, "
                  "~2.0 computed-not-used, ~0.25 not computed");

    const auto outcomes = bench::runGrid(opt, "fig15");

    bench::SuiteTable table({"comp. used", "comp. not used", "not comp."});
    for (const sweep::RunOutcome &o : outcomes) {
        table.add(o.workload, o.isFp,
                  {o.res.fates.avgComputedUsed(),
                   o.res.fates.avgComputedNotUsed(),
                   o.res.fates.avgNotComputed()});
    }
    std::printf("%s\n",
                table.render("Average elements per released vector "
                             "register (of 4), 8-way")
                    .c_str());
    return 0;
}
