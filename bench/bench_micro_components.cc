/**
 * @file
 * google-benchmark micro-benchmarks of the simulator substrate itself:
 * cache tag lookups, predictor updates, Table of Loads observations,
 * VRMT lookups, sparse-memory access and whole-core simulation speed.
 */

#include <array>

#include <benchmark/benchmark.h>

#include "arch/executor.hh"
#include "arch/memory.hh"
#include "branch/gshare.hh"
#include "harness.hh"
#include "mem/cache.hh"
#include "vector/elem_kernels.hh"
#include "vector/table_of_loads.hh"
#include "vector/vreg_file.hh"
#include "vector/vrmt.hh"

using namespace sdv;

namespace {

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache("bench", 64 * 1024, 2, 32);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(a, false).hit);
        a = (a + 4096 + 32) & 0xfffff;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_GsharePredictUpdate(benchmark::State &state)
{
    Gshare g(64 * 1024, 16);
    Addr pc = 0x10000;
    bool taken = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(g.predict(pc));
        g.update(pc, taken);
        taken = !taken;
        pc += 8;
    }
}
BENCHMARK(BM_GsharePredictUpdate);

void
BM_TableOfLoadsObserve(benchmark::State &state)
{
    TableOfLoads tl;
    Addr pc = 0x10000, addr = 0x100000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tl.observe(pc, addr));
        addr += 8;
        pc = 0x10000 + (addr & 0x3f8);
    }
}
BENCHMARK(BM_TableOfLoadsObserve);

void
BM_VrmtLookup(benchmark::State &state)
{
    Vrmt vrmt;
    VrmtEntry e;
    e.valid = true;
    for (Addr pc = 0x10000; pc < 0x10000 + 128 * 8; pc += 8) {
        e.pc = pc;
        vrmt.install(e);
    }
    Addr pc = 0x10000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(vrmt.lookup(pc));
        pc = 0x10000 + ((pc + 8) & 0x3f8);
    }
}
BENCHMARK(BM_VrmtLookup);

void
BM_VecRegFileChurn(benchmark::State &state)
{
    // The steady-state register lifecycle: allocate, compute and
    // validate every element, supersede, and let the incremental
    // release sweep reclaim — the sweepPending/sweepReleases hot path.
    VecRegFile vrf(128, 4);
    std::uint64_t released = 0;
    for (auto _ : state) {
        const VecRegRef r = vrf.allocate(0x1000);
        for (unsigned e = 0; e < 4; ++e) {
            vrf.setData(r, e, e);
            vrf.setUsed(r, e, true);
            vrf.setValid(r, e);
            vrf.setFree(r, e);
        }
        released += vrf.sweepReleases(0x1000);
    }
    benchmark::DoNotOptimize(released);
    state.counters["released/s"] = benchmark::Counter(
        double(released), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VecRegFileChurn);

void
BM_ValidationWakeup(benchmark::State &state)
{
    // The event-driven validation scheduling path: register interest
    // in an element, compute it, drain the wake event — what the core
    // now does per validation instead of polling every pending one
    // every cycle.
    VecRegFile vrf(128, 4);
    std::uint64_t wakes = 0;
    for (auto _ : state) {
        const VecRegRef r = vrf.allocate(0);
        for (unsigned e = 0; e < 4; ++e) {
            vrf.noteWaiter(r, e);
            vrf.setData(r, e, e);
            vrf.setFree(r, e);
        }
        vrf.drainWakeEvents([&](const VecWakeEvent &) { ++wakes; });
        vrf.sweepReleases(0);
    }
    benchmark::DoNotOptimize(wakes);
    state.counters["wakes/s"] = benchmark::Counter(
        double(wakes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ValidationWakeup);

void
BM_VrmtQuiesceInvalidate(benchmark::State &state)
{
    // Context-switch invalidation (quiesce / --quiesce-interval): the
    // epoch bump is O(1) regardless of occupancy.
    Vrmt vrmt;
    VrmtEntry e;
    e.valid = true;
    for (auto _ : state) {
        state.PauseTiming();
        for (Addr pc = 0x10000; pc < 0x10000 + 64 * 8; pc += 8) {
            e.pc = pc;
            vrmt.install(e);
        }
        state.ResumeTiming();
        vrmt.invalidateAll();
        benchmark::DoNotOptimize(vrmt.occupancy());
    }
}
BENCHMARK(BM_VrmtQuiesceInvalidate);

void
BM_SparseMemoryRead64(benchmark::State &state)
{
    SparseMemory mem;
    for (Addr a = 0; a < 1 << 20; a += 4096)
        mem.write64(a, a);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.read64(a));
        a = (a + 264) & 0xfffff;
    }
}
BENCHMARK(BM_SparseMemoryRead64);

void
BM_TraceDispatch(benchmark::State &state)
{
    // Pure functional execution rate through the compiled trace
    // (arg 1) against the decode-and-switch interpreter (arg 0) — the
    // dispatch overhead the timing core's oracle pays per fetch.
    static const Program prog = [] {
        Program p = buildWorkload("compress");
        p.predecodeAll();
        return p;
    }();
    const bool use_trace = state.range(0) != 0;
    std::uint64_t insts = 0;
    for (auto _ : state) {
        FunctionalCore fc(prog, use_trace);
        insts += fc.runToHalt(nullptr);
    }
    state.counters["insts/s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceDispatch)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void
BM_SimdElementBatch(benchmark::State &state)
{
    // Batched element semantics: one resolved kernel pointer applied
    // to a whole vector register's worth of lanes (the loop the host
    // compiler auto-vectorizes), swept over the figVL axis.
    const unsigned vl = unsigned(state.range(0));
    const ElemKernelFn kern = elemKernel(Opcode::ADD);
    std::array<std::uint64_t, 64> a{}, b{}, dst{};
    for (unsigned i = 0; i < 64; ++i) {
        a[i] = i * 3;
        b[i] = i * 7 + 1;
    }
    std::uint64_t elems = 0;
    for (auto _ : state) {
        kern(dst.data(), a.data(), b.data(), 0, vl);
        benchmark::DoNotOptimize(dst[vl - 1]);
        elems += vl;
    }
    state.counters["elems/s"] = benchmark::Counter(
        double(elems), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimdElementBatch)->Arg(4)->Arg(16)->Arg(64);

void
BM_CoreSimulation(benchmark::State &state)
{
    // Whole-machine simulation rate (cycles/second) on a small kernel.
    const Program prog = buildWorkload("compress");
    std::uint64_t cycles = 0, insts = 0;
    for (auto _ : state) {
        const SimResult r =
            simulate(makeConfig(4, 1, BusMode::WideBusSdv), prog,
                     10'000'000, /*verify=*/false);
        cycles += r.cycles;
        insts += r.insts;
        benchmark::DoNotOptimize(r.ipc);
    }
    state.counters["cycles/s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsRate);
    state.counters["sim_insts/s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoreSimulation)->Unit(benchmark::kMillisecond);

} // namespace

/**
 * Custom main so this binary speaks the same flag dialect as the other
 * benches: --json <path> maps onto google-benchmark's JSON reporter
 * and --quick shortens the measuring window for CI smoke runs.
 */
int
main(int argc, char **argv)
{
    std::vector<std::string> args;
    args.emplace_back(argc > 0 ? argv[0] : "bench_micro_components");
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--json" && i + 1 < argc) {
            args.push_back(std::string("--benchmark_out=") + argv[++i]);
            args.emplace_back("--benchmark_out_format=json");
        } else if (a == "--quick") {
            args.emplace_back("--benchmark_min_time=0.05");
        } else {
            args.push_back(a);
        }
    }
    std::vector<char *> argv2;
    for (auto &s : args)
        argv2.push_back(s.data());
    int argc2 = int(argv2.size());
    benchmark::Initialize(&argc2, argv2.data());
    if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
