/**
 * @file
 * Figure 10: control-flow independence — among the 100 instructions
 * that follow a mispredicted branch, the fraction that are reused
 * (committed as validations of vector elements computed before the
 * misprediction). Paper: ~17% for SpecInt. Runs through the sweep
 * plan registry ("fig10"); honours --jobs / --checkpoint.
 */

#include <cstdio>

#include "harness.hh"

using namespace sdv;

int
main(int argc, char **argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 10 - control-flow independence reuse",
                  "~17% of the 100 instructions after a mispredicted "
                  "branch are reused from vector registers (SpecInt)");

    const auto outcomes = bench::runGrid(opt, "fig10");

    bench::SuiteTable table({"reused", "window insts/total"});
    for (const sweep::RunOutcome &o : outcomes) {
        const double window_share =
            o.res.insts == 0
                ? 0.0
                : double(o.res.core.postMispredictWindowInsts) /
                      double(o.res.insts);
        table.add(o.workload, o.isFp,
                  {o.res.controlIndependenceFraction(), window_share});
    }
    std::printf("%s\n",
                table.render("Post-mispredict window reuse, 4-way, "
                             "1 wide port",
                             /*percent=*/true, 1)
                    .c_str());
    std::printf("paper: 17%% reuse for SpecInt; post-mispredict windows "
                "cover 10.53%% of SpecInt instructions\n");
    return 0;
}
