/**
 * @file
 * Table 1: the machine parameters of both evaluated processors, plus
 * the Section 4.1 storage accounting of the additional structures
 * (4KB vector register file + 4608B VRMT + 49152B TL = ~56KB), and
 * the workload footprints the evaluation runs over at the requested
 * --scale / --footprint.
 *
 * The machines come from the sweep plan registry (the Figure 11 grid's
 * 1pV columns), so this table can never drift from what the sweeps
 * actually simulate.
 */

#include <cstdio>

#include "common/log.hh"
#include "harness.hh"

using namespace sdv;

namespace {

/** @return the registry's 1pV machine of @p width ("4w"/"8w"). */
CoreConfig
registryConfig(unsigned width)
{
    const std::string group = std::to_string(width) + "w";
    for (const sweep::GridConfig &g : sweep::figureGrid("fig11"))
        if (g.group == group && g.column == "1pV")
            return g.cfg;
    fatal("fig11 grid lost its ", group, "/1pV column");
}

void
printConfig(unsigned width)
{
    const CoreConfig cfg = registryConfig(width);
    std::printf("%u-way processor\n", width);
    std::printf("  fetch/decode/issue/commit width : %u/%u/%u/%u\n",
                cfg.fetchWidth, cfg.decodeWidth, cfg.issueWidth,
                cfg.commitWidth);
    std::printf("  instruction window (ROB)        : %u\n",
                cfg.robEntries);
    std::printf("  load/store queue                : %u\n",
                cfg.lsqEntries);
    std::printf("  scalar FUs (int/intMulDiv/fpAdd/fpMulDiv): "
                "%u/%u/%u/%u\n",
                cfg.fu.intAlu, cfg.fu.intMulDiv, cfg.fu.fpAdd,
                cfg.fu.fpMulDiv);
    std::printf("  vector FUs (int/intMulDiv/fpAdd/fpMulDiv): "
                "%u/%u/%u/%u\n",
                cfg.engine.fu.intAlu, cfg.engine.fu.intMulDiv,
                cfg.engine.fu.fpAdd, cfg.engine.fu.fpMulDiv);
    std::printf("  branch predictor                : gshare, %u entries\n",
                cfg.gshareEntries);
    std::printf("  L1I: %lluKB %u-way %uB lines, %llu-cycle hit\n",
                (unsigned long long)cfg.mem.l1iSize / 1024,
                cfg.mem.l1iAssoc, cfg.mem.l1iLineBytes,
                (unsigned long long)cfg.mem.l1iHitCycles);
    std::printf("  L1D: %lluKB %u-way %uB lines, %llu-cycle hit, "
                "%llu-cycle miss, %u MSHRs\n",
                (unsigned long long)cfg.mem.l1dSize / 1024,
                cfg.mem.l1dAssoc, cfg.mem.l1dLineBytes,
                (unsigned long long)cfg.mem.l1dHitCycles,
                (unsigned long long)cfg.mem.l1dMissCycles,
                cfg.mem.mshrEntries);
    std::printf("  L2 : %lluKB %u-way %uB lines, +%llu-cycle miss\n",
                (unsigned long long)cfg.mem.l2Size / 1024,
                cfg.mem.l2Assoc, cfg.mem.l2LineBytes,
                (unsigned long long)cfg.mem.l2MissCycles);
    std::printf("  vector registers                : %u x %u x 64-bit\n",
                cfg.engine.numVregs, cfg.engine.vlen);
    std::printf("  TL  : %u-way x %u sets (conf %u)\n",
                cfg.engine.tlWays, cfg.engine.tlSets,
                cfg.engine.tlConfidence);
    std::printf("  VRMT: %u-way x %u sets\n\n", cfg.engine.vrmtWays,
                cfg.engine.vrmtSets);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner("Table 1 - processor microarchitectural parameters",
                  "4-way and 8-way machines; extra storage totals ~56KB");

    printConfig(4);
    printConfig(8);

    const StorageCost cost = storageCost(registryConfig(4));
    std::printf("additional storage (Section 4.1):\n");
    std::printf("  vector register file : %6llu bytes (paper: 4096)\n",
                (unsigned long long)cost.vectorRegisterFileBytes);
    std::printf("  VRMT                 : %6llu bytes (paper: 4608)\n",
                (unsigned long long)cost.vrmtBytes);
    std::printf("  Table of Loads       : %6llu bytes (paper: 49152)\n",
                (unsigned long long)cost.tlBytes);
    std::printf("  total                : %6llu bytes (~56KB)\n",
                (unsigned long long)cost.totalBytes());

    std::printf("\nworkload footprints at --scale %u, --footprint %s:\n",
                opt.scale, footprintName(opt.footprint));
    for (const WorkloadSpec &w : allWorkloads())
        std::printf("  %-9s %s\n", w.name.c_str(),
                    describeFootprint(w, opt.scale, opt.footprint)
                        .c_str());
    return 0;
}
