/**
 * @file
 * Figure 1: stride distribution for SpecInt95 and SpecFP95 (stride in
 * elements = address delta / access size, buckets 0..9), plus the
 * Section 2 claim that strides below 4 elements cover 97.9% (SpecInt)
 * and 81.3% (SpecFP) of strided loads.
 */

#include <cstdio>

#include "harness.hh"
#include "sim/stride_profiler.hh"

using namespace sdv;

int
main(int argc, char **argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 1 - stride distribution",
                  "stride 0 most frequent for both suites; <4-element "
                  "strides are 97.9% (INT) / 81.3% (FP) of strided loads");

    // Benchmarks are weighted equally (each SPEC program contributed
    // the same 100M-instruction sample in the paper).
    double int_frac[11] = {}, fp_frac[11] = {};
    double int_lt4 = 0, fp_lt4 = 0;
    unsigned n_int = 0, n_fp = 0;

    bench::forEachWorkload(opt, [&](const Workload &w, const Program &p) {
        const StrideProfile prof = profileStrides(p);
        double *frac = w.isFp ? fp_frac : int_frac;
        for (unsigned s = 0; s < 10; ++s)
            frac[s] += prof.strideHist.fraction(s);
        frac[10] += prof.strideHist.overflowFraction();
        (w.isFp ? fp_lt4 : int_lt4) += prof.stridedBelow4Fraction();
        (w.isFp ? n_fp : n_int) += 1;
    });
    for (unsigned s = 0; s <= 10; ++s) {
        int_frac[s] /= n_int ? n_int : 1;
        fp_frac[s] /= n_fp ? n_fp : 1;
    }

    TextTable t("Stride distribution (percentage of dynamic stride "
                "samples, benchmarks equally weighted)");
    t.setHeader({"stride (elements)", "SpecInt", "SpecFP"});
    for (unsigned s = 0; s < 10; ++s) {
        t.addRow({std::to_string(s), TextTable::percent(int_frac[s]),
                  TextTable::percent(fp_frac[s])});
    }
    t.addSeparator();
    t.addRow({">9 / irregular", TextTable::percent(int_frac[10]),
              TextTable::percent(fp_frac[10])});
    std::printf("%s\n", t.render().c_str());

    std::printf("strided loads with |stride| < 4 elements:\n");
    std::printf("  SpecInt: %5.1f%%   (paper: 97.9%%)\n",
                100.0 * int_lt4 / (n_int ? n_int : 1));
    std::printf("  SpecFP:  %5.1f%%   (paper: 81.3%%)\n",
                100.0 * fp_lt4 / (n_fp ? n_fp : 1));
    return 0;
}
