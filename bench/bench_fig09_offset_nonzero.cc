/**
 * @file
 * Figure 9: percentage of vector instructions whose source operands
 * start at a non-zero element offset (8-way, 128 vector registers).
 * The paper reports this is low everywhere (< ~25%).
 */

#include <cstdio>

#include "harness.hh"

using namespace sdv;

int
main(int argc, char **argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 9 - vector instructions with source offset != 0",
                  "the fraction of vector instances whose sources start "
                  "mid-register is low");

    bench::SuiteTable table({"offset!=0"});
    bench::forEachWorkload(opt, [&](const Workload &w, const Program &p) {
        const SimResult r =
            bench::run(makeConfig(8, 1, BusMode::WideBusSdv), p);
        const double frac =
            r.datapath.arithInstances == 0
                ? 0.0
                : double(r.datapath.instancesWithNonzeroSrcOffset) /
                      double(r.datapath.arithInstances);
        table.add(w.name, w.isFp, {frac});
    });
    std::printf("%s\n",
                table.render("Vector arithmetic instances with a "
                             "non-zero source offset, 8-way",
                             /*percent=*/true, 1)
                    .c_str());
    return 0;
}
