/**
 * @file
 * Figure 9: percentage of vector instructions whose source operands
 * start at a non-zero element offset (8-way, 128 vector registers).
 * The paper reports this is low everywhere (< ~25%). Runs through the
 * sweep plan registry ("fig09"); honours --jobs / --checkpoint.
 */

#include <cstdio>

#include "harness.hh"

using namespace sdv;

int
main(int argc, char **argv)
{
    const auto opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 9 - vector instructions with source offset != 0",
                  "the fraction of vector instances whose sources start "
                  "mid-register is low");

    const auto outcomes = bench::runGrid(opt, "fig09");

    bench::SuiteTable table({"offset!=0"});
    for (const sweep::RunOutcome &o : outcomes) {
        const double frac =
            o.res.datapath.arithInstances == 0
                ? 0.0
                : double(o.res.datapath.instancesWithNonzeroSrcOffset) /
                      double(o.res.datapath.arithInstances);
        table.add(o.workload, o.isFp, {frac});
    }
    std::printf("%s\n",
                table.render("Vector arithmetic instances with a "
                             "non-zero source offset, 8-way",
                             /*percent=*/true, 1)
                    .c_str());
    return 0;
}
