/**
 * @file
 * Drive the simulator from assembly text: assemble a pointer-chasing
 * kernel with the bundled two-pass assembler, disassemble it back, and
 * compare machine configurations on it.
 *
 * The kernel walks a linked list whose nodes are allocated
 * sequentially — the paper's motivating case of pointer code that a
 * compiler cannot vectorize but the hardware mechanism can.
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "sim/simulator.hh"

using namespace sdv;

namespace {

const char *const source = R"(
; Walk a 64-node list 200 times, summing payloads.
.data nodes 128          ; 64 nodes x (next, payload)
.entry main

main:
    la   r10, nodes      ; node cursor
    li   r14, 12800      ; total hops (200 walks x 64 nodes)
    li   r20, 0          ; checksum

; initialize the list: node i -> node i+1 (sequential pool)
    la   r1, nodes
    li   r2, 63
initloop:
    addi r3, r1, 16      ; next node address
    stq  r3, 0(r1)       ; next pointer
    stq  r2, 8(r1)       ; payload
    mov  r1, r3
    addi r2, r2, -1
    bnez r2, initloop
    la   r3, nodes       ; close the cycle
    stq  r3, 0(r1)
    stq  r0, 8(r1)

walk:
    ldq  r4, 8(r10)      ; payload     (stride-2 elements)
    ldq  r10, 0(r10)     ; next        (pointer chase, constant stride)
    srli r5, r4, 1
    add  r20, r20, r5
    addi r14, r14, -1
    bnez r14, walk

    la   r1, nodes
    stq  r20, 8(r1)      ; publish the checksum
    halt
)";

} // namespace

int
main()
{
    const AsmResult as = assemble(source);
    if (!as.ok) {
        std::fprintf(stderr, "assembly failed: %s\n", as.error.c_str());
        return 1;
    }

    std::printf("assembled %zu instructions; first ten:\n",
                as.program.numInsts());
    unsigned shown = 0;
    for (Addr pc = as.program.codeBase();
         shown < 10 && pc < as.program.codeEnd(); pc += instBytes) {
        std::printf("  0x%llx:  %s\n", (unsigned long long)pc,
                    as.program.instAt(pc).disasm().c_str());
        ++shown;
    }

    std::printf("\n%-28s %10s %8s %12s\n", "configuration", "cycles",
                "IPC", "L1D requests");
    for (const auto &[label, cfg] :
         {std::pair{"4-way, 1 scalar port",
                    makeConfig(4, 1, BusMode::ScalarBus)},
          std::pair{"4-way, 1 wide port",
                    makeConfig(4, 1, BusMode::WideBus)},
          std::pair{"4-way, 1 wide port + SDV",
                    makeConfig(4, 1, BusMode::WideBusSdv)}}) {
        const SimResult r = simulate(cfg, as.program);
        std::printf("%-28s %10llu %8.2f %12llu%s\n", label,
                    (unsigned long long)r.cycles, r.ipc,
                    (unsigned long long)r.memoryRequests(),
                    r.verified ? "" : "  (VERIFY FAILED)");
    }
    std::printf("\nthe pointer chase vectorizes because the allocator "
                "laid the nodes out at a constant stride.\n");
    return 0;
}
