/**
 * @file
 * Demonstrate control-flow independence (Section 3.5): vector state
 * survives branch mispredictions, so the instructions after a
 * mispredicted branch can reuse already-computed vector elements.
 *
 * The kernel streams an array and branches on a pseudo-random value in
 * each iteration; the loads and their dependent arithmetic are control
 * independent of the unpredictable branch.
 */

#include <cstdio>

#include "isa/builder.hh"
#include "sim/simulator.hh"

using namespace sdv;

int
main()
{
    ProgramBuilder b;
    const unsigned n = 2048;
    const Addr data = b.allocWords("data", n);
    const Addr noise = b.allocWords("noise", n);
    std::uint64_t x = 99;
    for (unsigned i = 0; i < n; ++i) {
        b.pokeWord(data + 8 * i, 3 * i + 7);
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        b.pokeWord(noise + 8 * i, (x >> 40) & 1);
    }

    b.loadAddr(10, data);
    b.loadAddr(11, noise);
    b.ldi(12, std::int32_t(n));
    b.ldi(20, 0);
    b.ldi(21, 0);
    const auto loop = b.newLabel();
    const auto skip = b.newLabel();
    b.bind(loop);
    b.ldq(1, 11, 0);   // unpredictable 0/1
    b.beqz(1, skip);   // ~50% taken: the predictor cannot learn this
    b.addi(21, 21, 1); // taken-path work
    b.bind(skip);
    b.ldq(2, 10, 0);   // control-independent stream (vectorized)
    b.slli(3, 2, 1);
    b.xori(3, 3, 0x7f);
    b.add(20, 20, 3);
    b.addi(10, 10, 8);
    b.addi(11, 11, 8);
    b.addi(12, 12, -1);
    b.bnez(12, loop);
    b.halt();
    const Program prog = b.finish();

    const SimResult sdv_on =
        simulate(makeConfig(4, 1, BusMode::WideBusSdv), prog);
    const SimResult sdv_off =
        simulate(makeConfig(4, 1, BusMode::WideBus), prog);

    std::printf("branch mispredictions: %llu (of %llu branches)\n\n",
                (unsigned long long)sdv_on.core.branchMispredicts,
                (unsigned long long)sdv_on.core.committedBranches);

    std::printf("among the 100 instructions after each mispredict:\n");
    std::printf("  reused from vector registers: %.1f%%  (paper, "
                "SpecInt avg: ~17%%)\n\n",
                100.0 * sdv_on.controlIndependenceFraction());

    std::printf("%-22s %10s %8s\n", "configuration", "cycles", "IPC");
    std::printf("%-22s %10llu %8.2f\n", "wide bus",
                (unsigned long long)sdv_off.cycles, sdv_off.ipc);
    std::printf("%-22s %10llu %8.2f\n", "wide bus + SDV",
                (unsigned long long)sdv_on.cycles, sdv_on.ipc);
    std::printf("\nvector state survives the squash: the stream's loads "
                "and arithmetic revalidate after recovery instead of "
                "re-executing.\n");
    return 0;
}
