/**
 * @file
 * Tour of the bundled SPEC95-like workloads: build each one, profile
 * its stride mix and vectorizability, and run it on the paper's
 * headline machine.
 */

#include <cstdio>

#include "sim/simulator.hh"
#include "sim/stride_profiler.hh"
#include "sim/vect_analyzer.hh"
#include "workloads/workload.hh"

using namespace sdv;

int
main()
{
    std::printf("%-9s %9s %7s %7s %7s %7s   %s\n", "name", "insts",
                "stride0", "vect%", "IPC", "val%", "description");
    for (const Workload &w : allWorkloads()) {
        const Program prog = w.instantiate(1);
        const StrideProfile sp = profileStrides(prog);
        const VectAnalysis va = analyzeVectorizability(prog);
        const SimResult r =
            simulate(makeConfig(4, 1, BusMode::WideBusSdv), prog);
        std::printf("%-9s %9llu %6.1f%% %6.1f%% %7.2f %6.1f%%   %s\n",
                    w.name.c_str(), (unsigned long long)va.insts,
                    100.0 * sp.strideHist.fraction(0),
                    100.0 * va.fraction(), r.ipc,
                    100.0 * r.validationFraction(),
                    w.description.c_str());
        if (!r.verified)
            std::printf("  WARNING: %s failed verification!\n",
                        w.name.c_str());
    }
    return 0;
}
