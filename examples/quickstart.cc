/**
 * @file
 * Quickstart: build a small program with the ProgramBuilder, run it on
 * the paper's 4-way machine with one wide bus and speculative dynamic
 * vectorization, and inspect what the mechanism did.
 */

#include <cstdio>

#include "isa/builder.hh"
#include "sim/simulator.hh"

using namespace sdv;

int
main()
{
    // A fused multiply-add over three stride-1 streams: acc += x*y + z.
    // Three loads per iteration make the scalar machine port-bound;
    // vectorization turns most of them into portless validations.
    ProgramBuilder b;
    const unsigned n = 512;
    const Addr xs = b.allocWords("xs", n);
    const Addr ys = b.allocWords("ys", n);
    const Addr zs = b.allocWords("zs", n);
    const Addr ws = b.allocWords("ws", n);
    for (unsigned i = 0; i < n; ++i) {
        b.pokeWord(xs + 8 * i, i + 1);
        b.pokeWord(ys + 8 * i, 2 * i + 3);
        b.pokeWord(zs + 8 * i, 5 * i + 1);
        b.pokeWord(ws + 8 * i, 7 * i + 2);
    }

    // The arrays are contiguous, so one base register with fixed
    // displacements addresses all three streams.
    const std::int32_t dy = std::int32_t(ys - xs);
    const std::int32_t dz = std::int32_t(zs - xs);
    const std::int32_t dw = std::int32_t(ws - xs);
    b.loadAddr(10, xs);
    b.ldi(12, std::int32_t(n)); // counter
    b.ldi(20, 0);               // accumulator
    const auto loop = b.here();
    b.ldq(1, 10, 0);   // x[i]      <- becomes a vector load
    b.ldq(2, 10, dy);  // y[i]      <- becomes a vector load
    b.ldq(4, 10, dz);  // z[i]      <- becomes a vector load
    b.ldq(5, 10, dw);  // w[i]      <- becomes a vector load
    b.mul(3, 1, 2);    // x*y       <- vectorized (vector sources)
    b.add(3, 3, 4);    // +z        <- vectorized
    b.xor_(3, 3, 5);   // ^w        <- vectorized
    b.add(20, 20, 3);  // acc       <- reduction: re-vectorizes
    b.addi(10, 10, 8);
    b.addi(12, 12, -1);
    b.bnez(12, loop);
    b.halt();
    const Program prog = b.finish();

    std::printf("program: %zu static instructions\n\n", prog.numInsts());

    // The paper's headline machine: 4-way, one wide L1D port, SDV on.
    const CoreConfig cfg = makeConfig(4, 1, BusMode::WideBusSdv);
    Simulator sim(cfg, prog);
    const SimResult r = sim.run();

    std::printf("finished: %s, verified against functional execution: "
                "%s\n",
                r.finished ? "yes" : "no", r.verified ? "yes" : "no");
    std::printf("cycles: %llu   instructions: %llu   IPC: %.2f\n\n",
                (unsigned long long)r.cycles, (unsigned long long)r.insts,
                r.ipc);

    std::printf("what the vectorization engine did:\n");
    std::printf("  vector load spawns (TL detections): %llu (+%llu "
                "chained)\n",
                (unsigned long long)r.engine.loadSpawns,
                (unsigned long long)r.engine.loadChainSpawns);
    std::printf("  vector arithmetic spawns:           %llu (+%llu "
                "chained)\n",
                (unsigned long long)r.engine.arithSpawns,
                (unsigned long long)r.engine.arithChainSpawns);
    std::printf("  validations committed:              %llu (%.1f%% of "
                "instructions)\n",
                (unsigned long long)r.core.committedValidations,
                100.0 * r.validationFraction());
    std::printf("  L1D port requests:                  %llu\n",
                (unsigned long long)r.memoryRequests());
    std::printf("  validation self-check mismatches:   %llu (must be 0)\n",
                (unsigned long long)
                    r.engine.validationValueMismatches);

    // Compare against the same machine without vectorization.
    const SimResult base =
        simulate(makeConfig(4, 1, BusMode::ScalarBus), prog);
    std::printf("\nspeedup vs 4-way scalar-bus baseline: %.1f%%\n",
                100.0 * (double(base.cycles) / double(r.cycles) - 1.0));
    return 0;
}
